package dsys_test

// Trace golden tests: the observability layer must agree exactly with the
// substrate's own accounting. Encode spans carry per-message byte tags
// (value / metadata / GID split) snapshotted from the worker's Stats deltas,
// so summing them over a whole run must reproduce gluon.Stats and the
// golden-volume numbers byte for byte — if these drift, the trace is lying
// about what went on the wire.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"gluon/internal/algorithms/bfs"
	"gluon/internal/dsys"
	"gluon/internal/generate"
	"gluon/internal/gluon"
	"gluon/internal/partition"
	"gluon/internal/trace"
)

// traceEncodeTotals folds every encode span of a snapshot.
type traceEncodeTotals struct {
	spans      uint64
	value      uint64
	meta       uint64
	gid        uint64
	modes      [trace.NumModes]uint64
	frameSends uint64
}

func foldEncodeSpans(events []trace.Event) traceEncodeTotals {
	var tot traceEncodeTotals
	for _, e := range events {
		switch e.Phase {
		case trace.PhaseEncode:
			tot.spans++
			tot.value += e.Value
			tot.meta += e.Meta
			tot.gid += e.GID
			if e.Mode >= 0 && int(e.Mode) < trace.NumModes {
				tot.modes[e.Mode]++
			}
		case trace.PhaseFrameSend:
			tot.frameSends++
		}
	}
	return tot
}

// TestTraceMatchesGoldenVolumes replays the bfs/cvc/osti golden-volume row
// (8 hosts, rmat scale 10) with tracing attached and checks the trace
// against the pinned numbers: one encode span per message, byte tags
// summing to the golden volume, and the golden encoding-mode histogram.
func TestTraceMatchesGoldenVolumes(t *testing.T) {
	const golden = 3 // goldenRows index of bfs/cvc/osti
	row := goldenRows[golden]
	if row.alg != "bfs" || row.policy != partition.CVC || row.config != "osti" {
		t.Fatalf("goldenRows[%d] is %s/%s/%s, want bfs/cvc/osti", golden, row.alg, row.policy, row.config)
	}

	cfg := generate.Config{Kind: "rmat", Scale: 10, EdgeFactor: 8, Seed: 42}
	edges, err := generate.Edges(cfg)
	if err != nil {
		t.Fatal(err)
	}
	numNodes := cfg.NumNodes()
	outDeg := make([]uint32, numNodes)
	inDeg := make([]uint32, numNodes)
	for _, e := range edges {
		outDeg[e.Src]++
		inDeg[e.Dst]++
	}

	tr := trace.New(trace.Config{Label: "golden"})
	res, err := dsys.Run(numNodes, edges, dsys.RunConfig{
		Hosts:         8,
		Policy:        row.policy,
		Opt:           goldenOpt(row.config),
		PolicyOptions: partition.Options{OutDegrees: outDeg, InDegrees: inDeg},
		MaxRounds:     50,
		Trace:         tr,
	}, bfs.NewLigra(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != row.rounds {
		t.Fatalf("rounds = %d, golden %d (fixture drifted; trace assertions would be meaningless)", res.Rounds, row.rounds)
	}

	events, dropped := tr.Snapshot()
	if dropped != 0 {
		t.Fatalf("dropped %d events; raise trace.Config.Capacity for this test", dropped)
	}
	tot := foldEncodeSpans(events)
	if tot.spans != row.msgs {
		t.Errorf("encode spans = %d, golden messages %d", tot.spans, row.msgs)
	}
	if got := tot.value + tot.meta + tot.gid; got != row.bytes {
		t.Errorf("encode byte tags sum to %d, golden volume %d", got, row.bytes)
	}
	if tot.modes != row.modes {
		t.Errorf("encode mode histogram = %v, golden %v", tot.modes, row.modes)
	}
	// Every sync message crosses the transport, so the frame-level send
	// instants must cover at least the sync messages (termination-detection
	// frames ride the same transport and add more).
	if tot.frameSends < row.msgs {
		t.Errorf("frame-send instants = %d, want >= %d sync messages", tot.frameSends, row.msgs)
	}

	// The analyzer must agree with the raw fold.
	s := trace.Summarize("golden", events, dropped)
	if s.Messages != row.msgs {
		t.Errorf("Summarize messages = %d, golden %d", s.Messages, row.msgs)
	}
	if s.TotalBytes() != row.bytes {
		t.Errorf("Summarize total bytes = %d, golden %d", s.TotalBytes(), row.bytes)
	}
	if s.Modes != row.modes {
		t.Errorf("Summarize modes = %v, golden %v", s.Modes, row.modes)
	}
	// Rounds: -1 (memoization) may appear; rounds 0..rounds-1 must.
	seen := map[int32]bool{}
	for _, r := range s.Rounds {
		seen[r.Round] = true
	}
	for r := int32(0); r < int32(row.rounds); r++ {
		if !seen[r] {
			t.Errorf("round %d missing from Summarize round table", r)
		}
	}
}

// TestTraceSumsEqualStats runs a 2-host BFS with full optimizations and
// checks that the trace's summed encode tags equal the substrates' own
// aggregated Stats exactly — the acceptance bar for the byte accounting.
func TestTraceSumsEqualStats(t *testing.T) {
	cfg := generate.Config{Kind: "rmat", Scale: 10, EdgeFactor: 8, Seed: 42}
	edges, err := generate.Edges(cfg)
	if err != nil {
		t.Fatal(err)
	}
	numNodes := cfg.NumNodes()
	outDeg := make([]uint32, numNodes)
	inDeg := make([]uint32, numNodes)
	for _, e := range edges {
		outDeg[e.Src]++
		inDeg[e.Dst]++
	}

	tr := trace.New(trace.Config{Label: "stats-equality"})
	res, err := dsys.Run(numNodes, edges, dsys.RunConfig{
		Hosts:         2,
		Policy:        partition.CVC,
		Opt:           gluon.Opt(),
		PolicyOptions: partition.Options{OutDegrees: outDeg, InDegrees: inDeg},
		MaxRounds:     50,
		Trace:         tr,
	}, bfs.NewLigra(0, 1))
	if err != nil {
		t.Fatal(err)
	}

	var value, meta, gid, msgs uint64
	var modes [trace.NumModes]uint64
	for _, h := range res.Hosts {
		value += h.Gluon.ValueBytes
		meta += h.Gluon.MetadataBytes
		gid += h.Gluon.GIDBytes
		msgs += h.Gluon.MessagesSent
		for i := range modes {
			modes[i] += h.Gluon.ModeCounts[i]
		}
	}

	events, dropped := tr.Snapshot()
	if dropped != 0 {
		t.Fatalf("dropped %d events", dropped)
	}
	tot := foldEncodeSpans(events)
	if tot.spans != msgs {
		t.Errorf("encode spans = %d, Stats.MessagesSent = %d", tot.spans, msgs)
	}
	if tot.value != value {
		t.Errorf("trace value bytes = %d, Stats.ValueBytes = %d", tot.value, value)
	}
	if tot.meta != meta {
		t.Errorf("trace metadata bytes = %d, Stats.MetadataBytes = %d", tot.meta, meta)
	}
	if tot.gid != gid {
		t.Errorf("trace GID bytes = %d, Stats.GIDBytes = %d", tot.gid, gid)
	}
	if tot.modes != modes {
		t.Errorf("trace mode histogram = %v, Stats.ModeCounts = %v", tot.modes, modes)
	}

	// RoundComm mirrors RoundCompute: one entry per round, summing to MaxComm.
	if len(res.RoundComm) != res.Rounds {
		t.Errorf("len(RoundComm) = %d, rounds = %d", len(res.RoundComm), res.Rounds)
	}
	var sum int64
	for _, d := range res.RoundComm {
		sum += int64(d)
	}
	if sum != int64(res.MaxComm) {
		t.Errorf("sum(RoundComm) = %d, MaxComm = %d", sum, int64(res.MaxComm))
	}
}

// TestSidebandMergedMatchesGoldenVolumes is the collection-plane golden
// test: the bfs/cvc/osti fixture run as a process-equivalent TCP cluster —
// every rank driven by its own dsys.RunSingle with its own Trace session
// and its own sideband Shipper, exactly as separate OS processes would —
// collected by one Collector and merged onto the collector's clock. The
// merged timeline's per-round encode byte sums must reproduce the pinned
// golden volumes byte for byte: clock alignment and incremental flushing
// may reorder and rebase events, never lose or distort them.
func TestSidebandMergedMatchesGoldenVolumes(t *testing.T) {
	const golden = 3 // goldenRows index of bfs/cvc/osti
	row := goldenRows[golden]
	if row.alg != "bfs" || row.policy != partition.CVC || row.config != "osti" {
		t.Fatalf("goldenRows[%d] is %s/%s/%s, want bfs/cvc/osti", golden, row.alg, row.policy, row.config)
	}
	const hosts = 8

	cfg := generate.Config{Kind: "rmat", Scale: 10, EdgeFactor: 8, Seed: 42}
	edges, err := generate.Edges(cfg)
	if err != nil {
		t.Fatal(err)
	}
	numNodes := cfg.NumNodes()
	outDeg := make([]uint32, numNodes)
	inDeg := make([]uint32, numNodes)
	for _, e := range edges {
		outDeg[e.Src]++
		inDeg[e.Dst]++
	}
	pol, err := partition.NewPolicy(row.policy, numNodes, hosts,
		partition.Options{OutDegrees: outDeg, InDegrees: inDeg})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := partition.PartitionAll(numNodes, edges, pol)
	if err != nil {
		t.Fatal(err)
	}

	col, err := trace.ListenAndCollect("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	ts := tcpTransports(t, hosts, 42600)

	// One driver per rank, each with a private trace session shipped over
	// the sideband — the process-equivalence boundary.
	errs := make([]error, hosts)
	var wg sync.WaitGroup
	for h := 0; h < hosts; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			tr := trace.New(trace.Config{Label: fmt.Sprintf("golden rank %d", h)})
			sh, err := trace.StartShipper(trace.ShipperConfig{
				Addr: col.Addr(), Trace: tr, Interval: 20 * time.Millisecond,
			})
			if err != nil {
				errs[h] = err
				return
			}
			_, err = dsys.RunSingle(parts[h], ts[h], dsys.RunConfig{
				Hosts:     hosts,
				Policy:    row.policy,
				Opt:       goldenOpt(row.config),
				MaxRounds: 50,
				Trace:     tr,
			}, bfs.NewLigra(0, 1))
			if cerr := sh.Close(); err == nil {
				err = cerr
			}
			errs[h] = err
		}(h)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("process-equivalent cluster still running after 60s")
	}
	for h, err := range errs {
		if err != nil {
			for _, cerr := range col.Errs() {
				t.Logf("collector session error: %v", cerr)
			}
			t.Fatalf("rank %d: %v", h, err)
		}
	}

	// Every shipper sent its bye; wait for the collector to finish the
	// session bookkeeping before merging.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, completed := col.Sessions(); completed >= hosts {
			break
		}
		if time.Now().After(deadline) {
			_, completed := col.Sessions()
			t.Fatalf("only %d of %d sideband sessions completed", completed, hosts)
		}
		time.Sleep(5 * time.Millisecond)
	}
	col.Close()
	for _, err := range col.Errs() {
		t.Errorf("sideband session error: %v", err)
	}

	events, meta := col.Merged()
	if meta.Dropped != 0 {
		t.Fatalf("merged trace dropped %d events; golden sums would undercount", meta.Dropped)
	}
	if len(meta.Clocks) != hosts {
		t.Fatalf("merged trace carries %d clock entries, want %d", len(meta.Clocks), hosts)
	}
	for _, ci := range meta.Clocks {
		if ci.Samples == 0 {
			t.Errorf("host %d clock offset has no samples", ci.Host)
		}
	}
	// The merge must put everything on one axis, sorted.
	for i := 1; i < len(events); i++ {
		if events[i].Start < events[i-1].Start {
			t.Fatalf("merged events not sorted at %d: %d after %d", i, events[i].Start, events[i-1].Start)
		}
	}

	// Per-round byte sums across all collected sessions must reproduce the
	// pinned golden volumes exactly.
	tot := foldEncodeSpans(events)
	if tot.spans != row.msgs {
		t.Errorf("merged encode spans = %d, golden messages %d", tot.spans, row.msgs)
	}
	if got := tot.value + tot.meta + tot.gid; got != row.bytes {
		t.Errorf("merged encode byte tags sum to %d, golden volume %d", got, row.bytes)
	}
	if tot.modes != row.modes {
		t.Errorf("merged encode mode histogram = %v, golden %v", tot.modes, row.modes)
	}
	perRound := map[int32]uint64{}
	for _, e := range events {
		if e.Phase == trace.PhaseEncode {
			perRound[e.Round] += e.Value + e.Meta + e.GID
		}
	}
	var roundSum uint64
	for r, b := range perRound {
		if r >= int32(row.rounds) {
			t.Errorf("encode bytes recorded for round %d beyond golden %d rounds", r, row.rounds)
		}
		roundSum += b
	}
	if roundSum != row.bytes {
		t.Errorf("per-round byte sums total %d, golden volume %d", roundSum, row.bytes)
	}

	// The analyzer over the merged trace agrees with the raw fold.
	s := trace.SummarizeMeta(meta, events)
	if s.Messages != row.msgs {
		t.Errorf("SummarizeMeta messages = %d, golden %d", s.Messages, row.msgs)
	}
	if s.TotalBytes() != row.bytes {
		t.Errorf("SummarizeMeta total bytes = %d, golden %d", s.TotalBytes(), row.bytes)
	}
}
