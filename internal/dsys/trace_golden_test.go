package dsys_test

// Trace golden tests: the observability layer must agree exactly with the
// substrate's own accounting. Encode spans carry per-message byte tags
// (value / metadata / GID split) snapshotted from the worker's Stats deltas,
// so summing them over a whole run must reproduce gluon.Stats and the
// golden-volume numbers byte for byte — if these drift, the trace is lying
// about what went on the wire.

import (
	"testing"

	"gluon/internal/algorithms/bfs"
	"gluon/internal/dsys"
	"gluon/internal/generate"
	"gluon/internal/gluon"
	"gluon/internal/partition"
	"gluon/internal/trace"
)

// traceEncodeTotals folds every encode span of a snapshot.
type traceEncodeTotals struct {
	spans      uint64
	value      uint64
	meta       uint64
	gid        uint64
	modes      [trace.NumModes]uint64
	frameSends uint64
}

func foldEncodeSpans(events []trace.Event) traceEncodeTotals {
	var tot traceEncodeTotals
	for _, e := range events {
		switch e.Phase {
		case trace.PhaseEncode:
			tot.spans++
			tot.value += e.Value
			tot.meta += e.Meta
			tot.gid += e.GID
			if e.Mode >= 0 && int(e.Mode) < trace.NumModes {
				tot.modes[e.Mode]++
			}
		case trace.PhaseFrameSend:
			tot.frameSends++
		}
	}
	return tot
}

// TestTraceMatchesGoldenVolumes replays the bfs/cvc/osti golden-volume row
// (8 hosts, rmat scale 10) with tracing attached and checks the trace
// against the pinned numbers: one encode span per message, byte tags
// summing to the golden volume, and the golden encoding-mode histogram.
func TestTraceMatchesGoldenVolumes(t *testing.T) {
	const golden = 3 // goldenRows index of bfs/cvc/osti
	row := goldenRows[golden]
	if row.alg != "bfs" || row.policy != partition.CVC || row.config != "osti" {
		t.Fatalf("goldenRows[%d] is %s/%s/%s, want bfs/cvc/osti", golden, row.alg, row.policy, row.config)
	}

	cfg := generate.Config{Kind: "rmat", Scale: 10, EdgeFactor: 8, Seed: 42}
	edges, err := generate.Edges(cfg)
	if err != nil {
		t.Fatal(err)
	}
	numNodes := cfg.NumNodes()
	outDeg := make([]uint32, numNodes)
	inDeg := make([]uint32, numNodes)
	for _, e := range edges {
		outDeg[e.Src]++
		inDeg[e.Dst]++
	}

	tr := trace.New(trace.Config{Label: "golden"})
	res, err := dsys.Run(numNodes, edges, dsys.RunConfig{
		Hosts:         8,
		Policy:        row.policy,
		Opt:           goldenOpt(row.config),
		PolicyOptions: partition.Options{OutDegrees: outDeg, InDegrees: inDeg},
		MaxRounds:     50,
		Trace:         tr,
	}, bfs.NewLigra(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != row.rounds {
		t.Fatalf("rounds = %d, golden %d (fixture drifted; trace assertions would be meaningless)", res.Rounds, row.rounds)
	}

	events, dropped := tr.Snapshot()
	if dropped != 0 {
		t.Fatalf("dropped %d events; raise trace.Config.Capacity for this test", dropped)
	}
	tot := foldEncodeSpans(events)
	if tot.spans != row.msgs {
		t.Errorf("encode spans = %d, golden messages %d", tot.spans, row.msgs)
	}
	if got := tot.value + tot.meta + tot.gid; got != row.bytes {
		t.Errorf("encode byte tags sum to %d, golden volume %d", got, row.bytes)
	}
	if tot.modes != row.modes {
		t.Errorf("encode mode histogram = %v, golden %v", tot.modes, row.modes)
	}
	// Every sync message crosses the transport, so the frame-level send
	// instants must cover at least the sync messages (termination-detection
	// frames ride the same transport and add more).
	if tot.frameSends < row.msgs {
		t.Errorf("frame-send instants = %d, want >= %d sync messages", tot.frameSends, row.msgs)
	}

	// The analyzer must agree with the raw fold.
	s := trace.Summarize("golden", events, dropped)
	if s.Messages != row.msgs {
		t.Errorf("Summarize messages = %d, golden %d", s.Messages, row.msgs)
	}
	if s.TotalBytes() != row.bytes {
		t.Errorf("Summarize total bytes = %d, golden %d", s.TotalBytes(), row.bytes)
	}
	if s.Modes != row.modes {
		t.Errorf("Summarize modes = %v, golden %v", s.Modes, row.modes)
	}
	// Rounds: -1 (memoization) may appear; rounds 0..rounds-1 must.
	seen := map[int32]bool{}
	for _, r := range s.Rounds {
		seen[r.Round] = true
	}
	for r := int32(0); r < int32(row.rounds); r++ {
		if !seen[r] {
			t.Errorf("round %d missing from Summarize round table", r)
		}
	}
}

// TestTraceSumsEqualStats runs a 2-host BFS with full optimizations and
// checks that the trace's summed encode tags equal the substrates' own
// aggregated Stats exactly — the acceptance bar for the byte accounting.
func TestTraceSumsEqualStats(t *testing.T) {
	cfg := generate.Config{Kind: "rmat", Scale: 10, EdgeFactor: 8, Seed: 42}
	edges, err := generate.Edges(cfg)
	if err != nil {
		t.Fatal(err)
	}
	numNodes := cfg.NumNodes()
	outDeg := make([]uint32, numNodes)
	inDeg := make([]uint32, numNodes)
	for _, e := range edges {
		outDeg[e.Src]++
		inDeg[e.Dst]++
	}

	tr := trace.New(trace.Config{Label: "stats-equality"})
	res, err := dsys.Run(numNodes, edges, dsys.RunConfig{
		Hosts:         2,
		Policy:        partition.CVC,
		Opt:           gluon.Opt(),
		PolicyOptions: partition.Options{OutDegrees: outDeg, InDegrees: inDeg},
		MaxRounds:     50,
		Trace:         tr,
	}, bfs.NewLigra(0, 1))
	if err != nil {
		t.Fatal(err)
	}

	var value, meta, gid, msgs uint64
	var modes [trace.NumModes]uint64
	for _, h := range res.Hosts {
		value += h.Gluon.ValueBytes
		meta += h.Gluon.MetadataBytes
		gid += h.Gluon.GIDBytes
		msgs += h.Gluon.MessagesSent
		for i := range modes {
			modes[i] += h.Gluon.ModeCounts[i]
		}
	}

	events, dropped := tr.Snapshot()
	if dropped != 0 {
		t.Fatalf("dropped %d events", dropped)
	}
	tot := foldEncodeSpans(events)
	if tot.spans != msgs {
		t.Errorf("encode spans = %d, Stats.MessagesSent = %d", tot.spans, msgs)
	}
	if tot.value != value {
		t.Errorf("trace value bytes = %d, Stats.ValueBytes = %d", tot.value, value)
	}
	if tot.meta != meta {
		t.Errorf("trace metadata bytes = %d, Stats.MetadataBytes = %d", tot.meta, meta)
	}
	if tot.gid != gid {
		t.Errorf("trace GID bytes = %d, Stats.GIDBytes = %d", tot.gid, gid)
	}
	if tot.modes != modes {
		t.Errorf("trace mode histogram = %v, Stats.ModeCounts = %v", tot.modes, modes)
	}

	// RoundComm mirrors RoundCompute: one entry per round, summing to MaxComm.
	if len(res.RoundComm) != res.Rounds {
		t.Errorf("len(RoundComm) = %d, rounds = %d", len(res.RoundComm), res.Rounds)
	}
	var sum int64
	for _, d := range res.RoundComm {
		sum += int64(d)
	}
	if sum != int64(res.MaxComm) {
		t.Errorf("sum(RoundComm) = %d, MaxComm = %d", sum, int64(res.MaxComm))
	}
}
