// Package dsys is the distributed BSP runner that turns (engine + Gluon)
// into a distributed graph analytics system: D-Ligra, D-Galois, and D-IrGL
// are all instances of the same loop here, differing only in the Program
// the algorithm packages construct (which engine executes each round).
//
// The execution model is the paper's §2.2: rounds of local computation on
// each host's partition, a field synchronization between rounds, and a
// global quiescence check (all-reduce of active-work counts).
package dsys

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"gluon/internal/bitset"
	"gluon/internal/ckpt"
	"gluon/internal/comm"
	"gluon/internal/gluon"
	"gluon/internal/graph"
	"gluon/internal/partition"
	"gluon/internal/trace"
)

// Program is one host's instance of a vertex program bound to a concrete
// engine. The algorithm packages provide constructors per engine.
type Program interface {
	// Name identifies the algorithm ("bfs", "cc", "pr", "sssp").
	Name() string
	// Init initializes fields (possibly with one-time synchronization) and
	// returns the initially active local proxies.
	Init() (*bitset.Bitset, error)
	// Round applies the operator over the frontier and returns the set of
	// locally updated proxies.
	Round(frontier *bitset.Bitset) (*bitset.Bitset, error)
	// Sync synchronizes the program's fields through Gluon. On return,
	// updated holds the next frontier (Gluon consumes shipped mirror bits
	// and adds remotely-written proxies).
	Sync(updated *bitset.Bitset) error
	// Finalize reconciles final values onto all proxies (for output).
	Finalize() error
	// MasterValue reads the final value of a master proxy, as float64
	// (integer labels convert exactly below 2^53).
	MasterValue(lid uint32) float64
}

// ProgramFactory builds one host's Program over its partition and substrate.
type ProgramFactory func(p *partition.Partition, g *gluon.Gluon) (Program, error)

// HostResult carries one host's measurements for a run.
type HostResult struct {
	Host        int
	Rounds      int
	ComputeTime time.Duration
	SyncTime    time.Duration // Gluon sync + termination detection
	Gluon       gluon.Stats
}

// Result aggregates a distributed run.
type Result struct {
	Algorithm string
	NumHosts  int
	Rounds    int
	// Time is the end-to-end wall time of the slowest host (excluding
	// partitioning), the paper's execution-time metric.
	Time time.Duration
	// MaxCompute sums per-round maxima of compute time across hosts — the
	// "Computation (max across hosts)" bar of Figure 10.
	MaxCompute time.Duration
	// TotalCommBytes is the global field-sync communication volume.
	TotalCommBytes uint64
	// MaxComm sums per-round maxima of sync time across hosts — the
	// communication analogue of MaxCompute, so compute/comm skew is
	// visible without tracing.
	MaxComm time.Duration
	// RoundCompute[r] is the max-across-hosts compute time of round r (the
	// per-round series behind MaxCompute, for figure-style traces).
	RoundCompute []time.Duration
	// RoundComm[r] is the max-across-hosts sync time (Gluon sync +
	// termination detection) of round r, the series behind MaxComm.
	RoundComm []time.Duration
	Hosts     []HostResult
	// Values holds the converged labels indexed by global ID (collected
	// from masters) when CollectValues was set.
	Values []float64
}

// RunConfig configures a distributed run on the in-process transport.
type RunConfig struct {
	Hosts         int
	Policy        partition.Kind
	Opt           gluon.Options
	PolicyOptions partition.Options
	// CollectValues gathers converged per-node values into Result.Values.
	CollectValues bool
	// MaxRounds aborts runaway programs; 0 means no limit.
	MaxRounds int
	// Net adds simulated link costs to the in-process transport, making
	// wall-clock time sensitive to communication volume as it is on real
	// clusters. Zero value = instant delivery.
	Net comm.NetModel
	// Trace, when non-nil, records per-phase spans from every host's
	// substrate, transport, and BSP driver into one session (export with
	// Trace.WriteFile, analyze with cmd/gluon-trace). Nil disables tracing.
	Trace *trace.Trace
	// Watchdog, when non-nil, runs the straggler/stall watchdog over the
	// run: hosts gossip heartbeats on comm.TagHeartbeat, rounds exceeding
	// Factor× the trailing-median round time are flagged with the suspect
	// host and phase named, and a stall persisting past StallTimeout fails
	// the cluster through the PeerError path with a *trace.StallError
	// diagnosis attached. Nil disables the watchdog entirely (no gossip, no
	// goroutines). Works with or without Trace: without, a hidden disabled
	// session carries the liveness counters at zero event cost.
	Watchdog *trace.WatchdogConfig
	// Checkpoint, when non-nil, enables periodic asynchronous checkpoints:
	// at every Every-th round boundary the cluster agrees on the epoch via
	// a round-cursor all-reduce (the barrier token), each host copies its
	// program field state + frontier + substrate memo, and a background
	// writer persists the snapshot (versioned binary format, CRC, atomic
	// rename, last-Keep retention). Requires the program to implement
	// Checkpointable. Nil disables checkpointing entirely: the BSP loop is
	// untouched and costs nothing extra.
	Checkpoint *ckpt.Options
	// Restore starts the host from its newest complete on-disk checkpoint
	// instead of Init: it rebuilds the substrate from the checkpointed
	// memo, rendezvouses with its peers on a common epoch (the cluster
	// minimum), imports field state, and resumes the loop at the
	// checkpointed round. Requires Checkpoint. Used both for cold cluster
	// restarts (every host restores) and for a replacement host rejoining
	// survivors (see Rejoin).
	Restore bool
	// Rejoin lets a survivor of a peer failure hold at the rejoin
	// rendezvous and roll back to the newest cluster-wide checkpoint
	// epoch instead of failing the run, resuming once a replacement host
	// dials back in (comm.RejoinTCP) and restores. Effective on transports
	// that propagate the HOLD announcement by poisoning (TCP); requires
	// Checkpoint.
	Rejoin bool
	// RejoinTimeout bounds the per-peer wait at the rejoin rendezvous
	// (how long survivors hold for a replacement). 0 means 120s.
	RejoinTimeout time.Duration

	// wd is the process-local watchdog handle, plumbed by
	// RunWithTransports/RunSingle so the driver can suspend stall
	// escalation across checkpoint barriers and rejoin windows.
	wd *runWatchdog
}

// Run partitions the graph, spins up one goroutine per host over an
// in-process hub, runs the program to global quiescence, and aggregates
// results. It is the all-in-one entry point used by tests, examples, and
// the benchmark harness.
//
// When cfg.PolicyOptions carries no degree tables, Run derives them from
// the edge list so that degree-balanced chunking and the HVC threshold work
// out of the box.
func Run(numNodes uint64, edges []graph.Edge, cfg RunConfig, factory ProgramFactory) (*Result, error) {
	if cfg.PolicyOptions.OutDegrees == nil && cfg.PolicyOptions.InDegrees == nil {
		outDeg := make([]uint32, numNodes)
		inDeg := make([]uint32, numNodes)
		for _, e := range edges {
			outDeg[e.Src]++
			inDeg[e.Dst]++
		}
		cfg.PolicyOptions.OutDegrees = outDeg
		cfg.PolicyOptions.InDegrees = inDeg
	}
	pol, err := partition.NewPolicy(cfg.Policy, numNodes, cfg.Hosts, cfg.PolicyOptions)
	if err != nil {
		return nil, err
	}
	parts, err := partition.PartitionAll(numNodes, edges, pol)
	if err != nil {
		return nil, err
	}
	return RunPartitioned(parts, cfg, factory)
}

// RunPartitioned runs over pre-built partitions (lets callers reuse a
// partitioning across optimization configurations, as Figure 10 does).
func RunPartitioned(parts []*partition.Partition, cfg RunConfig, factory ProgramFactory) (*Result, error) {
	hub := comm.NewHubWithModel(len(parts), cfg.Net)
	defer hub.Close()
	return RunWithTransports(parts, hub.Endpoints(), cfg, factory)
}

// RunWithTransports runs over pre-built partitions and caller-supplied
// transports — one per host, e.g. TCP endpoints for clusters of separate
// processes (see examples/tcp-cluster).
//
// Fault contract: a BSP round is a global rendezvous, so one failed host
// means the job cannot complete. When any host's driver returns an error,
// the failure is propagated to every other transport via comm.PeerFailer:
// survivors blocked in a sync or collective unblock with a *comm.PeerError
// naming the dead host (cascading host by host until every driver has
// returned), and RunWithTransports reports the root cause instead of
// hanging on wg.Wait forever.
func RunWithTransports(parts []*partition.Partition, ts []comm.Transport, cfg RunConfig, factory ProgramFactory) (*Result, error) {
	hosts := len(parts)
	if len(ts) != hosts {
		return nil, fmt.Errorf("dsys: %d partitions but %d transports", hosts, len(ts))
	}
	adoptFlightTrace(&cfg)
	if cfg.Watchdog != nil {
		ensureLivenessTrace(&cfg)
		eps := make([]wdEndpoint, hosts)
		for h := 0; h < hosts; h++ {
			eps[h] = wdEndpoint{host: h, t: ts[h]}
		}
		wd := startRunWatchdog(cfg.Trace, eps, hosts, *cfg.Watchdog)
		defer wd.stop()
		cfg.wd = wd
	}
	results := make([]*hostRun, hosts)
	errs := make([]error, hosts)
	var wg sync.WaitGroup
	for h := 0; h < hosts; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			results[h], errs[h] = runHostRecover(parts[h], ts[h], cfg, factory)
			if errs[h] != nil {
				// Fail loudly: declare this host dead to every survivor so
				// their pending receives return *comm.PeerError instead of
				// blocking on messages that will never arrive.
				for i, pt := range ts {
					if i == h {
						continue
					}
					if pf, ok := pt.(comm.PeerFailer); ok {
						pf.FailPeer(h, errs[h])
					}
				}
				// And poison this host's own mailboxes: helper goroutines
				// (watchdog gossip drains, late collectives) parked in
				// Recv/RecvAny on the failing host's transport must fail
				// fast too, not sit blocked until the transport closes.
				if pf, ok := ts[h].(comm.PeerFailer); ok {
					for i := range ts {
						if i != h {
							pf.FailPeer(i, errs[h])
						}
					}
				}
			}
		}(h)
	}
	wg.Wait()
	if h, err := firstFailure(errs); err != nil {
		return nil, fmt.Errorf("dsys: host %d: %w", h, err)
	}
	return aggregate(parts, results, cfg)
}

// RunSingle runs ONE host of a multi-process cluster: the local partition
// over a caller-supplied transport (typically a TCP endpoint whose peers
// live in other OS processes). It is the per-process entry point behind
// examples/tcp-cluster's -host mode: every process calls RunSingle with its
// own partition and rank, and the BSP rounds rendezvous over the wire.
//
// The returned Result aggregates this host only — cluster-wide maxima
// (MaxCompute, Time) reflect the local host, and Values (with
// CollectValues) holds only local masters' entries; merge across processes
// if global views are needed. The watchdog, when configured, gossips with
// the remote peers over TagHeartbeat and can only poison this process's
// transport on escalation; remote processes run their own watchdogs and
// reach the same verdict independently.
//
// Fault contract: when the local driver fails, the transport is closed
// before returning, so remote peers' pending receives fail with a
// *comm.PeerError naming this host instead of blocking forever.
func RunSingle(p *partition.Partition, t comm.Transport, cfg RunConfig, factory ProgramFactory) (*Result, error) {
	adoptFlightTrace(&cfg)
	if cfg.Watchdog != nil {
		ensureLivenessTrace(&cfg)
		wd := startRunWatchdog(cfg.Trace, []wdEndpoint{{host: p.HostID, t: t}}, t.NumHosts(), *cfg.Watchdog)
		defer wd.stop()
		cfg.wd = wd
	}
	hr, err := runHostRecover(p, t, cfg, factory)
	if err != nil {
		t.Close() // drop the mesh so remote receives poison loudly
		return nil, fmt.Errorf("dsys: host %d: %w", p.HostID, err)
	}
	return aggregate([]*partition.Partition{p}, []*hostRun{hr}, cfg)
}

// firstFailure picks the error to report for a failed run. Propagation
// makes every surviving host fail with a derived *comm.PeerError, so prefer
// an error that names a peer as the root cause (the host that observed the
// fault directly); otherwise take the first host error.
func firstFailure(errs []error) (int, error) {
	for h, err := range errs {
		var pe *comm.PeerError
		if errors.As(err, &pe) {
			return h, err
		}
	}
	for h, err := range errs {
		if err != nil {
			return h, err
		}
	}
	return -1, nil
}

// adoptFlightTrace lets an untraced run ride the armed flight recorder's
// ring (flight-recorder mode: record cheaply, explain later). When the
// process armed a FlightRecorder but the caller passed no Trace, the
// recorder's own modest always-on session becomes the run's trace, so a
// crash bundle has a tail to freeze. Disarmed or explicitly traced runs
// are untouched.
func adoptFlightTrace(cfg *RunConfig) {
	if cfg.Trace == nil {
		cfg.Trace = trace.Armed().Trace()
	}
}

// runHostRecover is runHost behind a panic barrier: a panic anywhere in the
// BSP round loop (a program's Round, the substrate, the driver itself)
// becomes an error that propagates through the normal FailPeer path — so
// one buggy operator fails the cluster loudly instead of tearing the whole
// process down mid-rendezvous — after freezing a postmortem bundle with the
// panic value and stack.
func runHostRecover(p *partition.Partition, t comm.Transport, cfg RunConfig, factory ProgramFactory) (hr *hostRun, err error) {
	defer func() {
		if v := recover(); v != nil {
			buf := make([]byte, 64<<10)
			n := runtime.Stack(buf, false)
			err = fmt.Errorf("dsys: panic in BSP round loop: %v", v)
			rec := cfg.Trace.Recorder(p.HostID)
			trace.Crash(trace.DumpInfo{
				Trigger: trace.TriggerPanic,
				Host:    p.HostID,
				Peer:    -1,
				Round:   int(rec.Round()),
				Phase:   rec.LivePhase(),
				Cause:   err,
				Detail:  string(buf[:n]),
			})
			hr = nil
		}
	}()
	return runHost(p, t, cfg, factory)
}

// dumpRestoreFailure freezes a postmortem for a failed restore or rejoin —
// the recovery path itself dying is exactly when an operator needs the
// forensics most.
func dumpRestoreFailure(host int, rec *trace.Recorder, cause error) {
	trace.Crash(trace.DumpInfo{
		Trigger: trace.TriggerRestoreFailed,
		Host:    host,
		Peer:    -1,
		Round:   int(rec.Round()),
		Phase:   rec.LivePhase(),
		Cause:   cause,
	})
}

// hostRun is one host's raw outcome.
type hostRun struct {
	res          HostResult
	wall         time.Duration
	perRoundComp []time.Duration
	perRoundSync []time.Duration
	values       map[uint64]float64
	name         string
}

// runHost is the per-host BSP driver.
func runHost(p *partition.Partition, t comm.Transport, cfg RunConfig, factory ProgramFactory) (*hostRun, error) {
	var restored *ckpt.Snapshot
	if cfg.Restore {
		if cfg.Checkpoint == nil {
			return nil, errors.New("dsys: Restore requires Checkpoint options")
		}
		snap, err := ckpt.Latest(cfg.Checkpoint.Dir, p.HostID)
		if err != nil {
			dumpRestoreFailure(p.HostID, nil, err)
			return nil, err
		}
		if snap.NumHosts != t.NumHosts() {
			err := fmt.Errorf("dsys: checkpoint is for %d hosts, cluster has %d",
				snap.NumHosts, t.NumHosts())
			dumpRestoreFailure(p.HostID, nil, err)
			return nil, err
		}
		restored = snap
	}
	var g *gluon.Gluon
	var err error
	if restored != nil {
		// The survivors are holding at the rendezvous, not in gluon.New,
		// so the memoization exchange cannot run; the checkpoint carries
		// the master-side orders it would have produced.
		g, err = gluon.NewRestored(p, t, cfg.Opt, restored.Section(secGluonMemo))
	} else {
		g, err = gluon.New(p, t, cfg.Opt)
	}
	if err != nil {
		return nil, err
	}
	// Attach this host's trace recorder to the substrate and, when the
	// transport can carry frame-level events, to the transport too. Events
	// emitted before the first round (Init syncs) are stamped round -1.
	rec := cfg.Trace.Recorder(p.HostID)
	if rec != nil {
		g.SetRecorder(rec)
		if tc, ok := t.(comm.TraceCarrier); ok {
			tc.SetTrace(rec)
		}
	}
	tr := rec.Enabled()
	prog, err := factory(p, g)
	if err != nil {
		return nil, err
	}
	var cp Checkpointable
	var cw *ckpt.Writer
	var submitEpoch func(uint64)
	every := 0
	if cfg.Checkpoint != nil {
		var ok bool
		if cp, ok = prog.(Checkpointable); !ok {
			return nil, fmt.Errorf("dsys: checkpointing enabled but program %q does not implement Checkpointable",
				prog.Name())
		}
		// Track which epoch each completed write belongs to (the writer
		// drains submissions in order) so the flight recorder's "last
		// checkpoint epoch" reflects durable state, not submissions.
		var ckq struct {
			sync.Mutex
			q []uint64
		}
		cw = ckpt.NewWriter(*cfg.Checkpoint, p.HostID, func(bytes int, err error) {
			cfg.Trace.CountCkptWrite(bytes, err)
			ckq.Lock()
			var epoch uint64
			if len(ckq.q) > 0 {
				epoch, ckq.q = ckq.q[0], ckq.q[1:]
			}
			ckq.Unlock()
			if err == nil {
				trace.Armed().SetLastCheckpoint(epoch)
			}
		})
		submitEpoch = func(epoch uint64) {
			ckq.Lock()
			ckq.q = append(ckq.q, epoch)
			ckq.Unlock()
		}
		defer cw.Close()
		every = cfg.Checkpoint.EveryOrDefault()
	}
	hr := &hostRun{name: prog.Name()}
	start := time.Now()
	round := 0
	var frontier *bitset.Bitset

	// checkpoint agrees on the epoch with a round-cursor all-reduce (the
	// barrier token: every host must present the same cursor), copies the
	// host's state, and hands the snapshot to the background writer. Only
	// the token + copy run inline; the disk write overlaps the next rounds.
	checkpoint := func(epoch int) error {
		cfg.wd.suspendWatch()
		defer cfg.wd.resumeWatch()
		var t0 int64
		if tr {
			t0 = rec.Now()
		}
		tok, err := comm.AllReduceMax(t, uint64(epoch))
		if err != nil {
			return err
		}
		if tok != uint64(epoch) {
			return fmt.Errorf("dsys: checkpoint token mismatch at epoch %d: cluster max %d", epoch, tok)
		}
		snap, err := captureSnapshot(p, g, cp, hr.name, uint64(epoch), frontier)
		if err != nil {
			return err
		}
		if tr {
			rec.Emit(trace.Event{Phase: trace.PhaseCkpt, Start: t0, Dur: rec.Now() - t0,
				Peer: -1, Detail: fmt.Sprintf("epoch %d", epoch)})
		}
		submitEpoch(uint64(epoch))
		return cw.Submit(snap)
	}

	// rejoin is the recovery path for a *comm.PeerError when rejoin is
	// enabled: hold at the rendezvous (watchdog suspended so the stalled
	// cluster is not escalated while it recovers), agree on the newest
	// epoch every host can load, reload state, and rewind the cursor.
	rejoin := func(cause error) (ok bool, rerr error) {
		defer func() {
			if rerr != nil {
				dumpRestoreFailure(p.HostID, rec, rerr)
			}
		}()
		if !cfg.Rejoin || cw == nil {
			return false, nil
		}
		var pe *comm.PeerError
		if !errors.As(cause, &pe) {
			return false, nil
		}
		cfg.wd.suspendWatch()
		defer cfg.wd.resumeWatch()
		snap, err := ckpt.Latest(cfg.Checkpoint.Dir, p.HostID)
		if err != nil {
			return false, fmt.Errorf("dsys: rejoin after %v: %w", cause, err)
		}
		epoch, err := rejoinRendezvous(t, g, snap.Epoch, cfg.rejoinTimeout())
		if err != nil {
			return false, err
		}
		if epoch != snap.Epoch {
			if snap, err = ckpt.Load(cfg.Checkpoint.Dir, p.HostID, epoch); err != nil {
				return false, err
			}
		}
		if frontier, err = restoreSnapshot(p, cp, snap); err != nil {
			return false, err
		}
		round = int(epoch)
		cfg.Trace.CountCkptRestore()
		// Re-executed rounds would misalign the per-round series with the
		// round index; drop entries past the rollback point (cumulative
		// totals keep the re-executed work — it was really spent).
		if len(hr.perRoundComp) > round {
			hr.perRoundComp = hr.perRoundComp[:round]
		}
		if len(hr.perRoundSync) > round {
			hr.perRoundSync = hr.perRoundSync[:round]
		}
		return true, nil
	}

	if restored != nil {
		cfg.wd.suspendWatch()
		epoch, err := rejoinRendezvous(t, g, restored.Epoch, cfg.rejoinTimeout())
		if err == nil && epoch != restored.Epoch {
			restored, err = ckpt.Load(cfg.Checkpoint.Dir, p.HostID, epoch)
		}
		if err == nil {
			frontier, err = restoreSnapshot(p, cp, restored)
		}
		cfg.wd.resumeWatch()
		if err != nil {
			dumpRestoreFailure(p.HostID, rec, err)
			return nil, err
		}
		round = int(restored.Epoch)
		cfg.Trace.CountCkptRestore()
		rec.SetRound(int32(round))
	} else {
		if err := comm.Barrier(t); err != nil {
			return nil, err
		}
		if frontier, err = prog.Init(); err != nil {
			return nil, err
		}
		if cw != nil {
			// Epoch 0: always have a checkpoint on disk, so a failure in
			// the very first rounds is recoverable too.
			if err := checkpoint(0); err != nil {
				return nil, err
			}
		}
	}
	for {
		if cfg.MaxRounds > 0 && round >= cfg.MaxRounds {
			break
		}
		rec.SetRound(int32(round))
		rec.SetLivePhase(trace.PhaseCompute)
		compStart := time.Now()
		var t0 int64
		if tr {
			t0 = rec.Now()
		}
		updated, err := prog.Round(frontier)
		if err != nil {
			return nil, err
		}
		if tr {
			rec.Emit(trace.Event{Phase: trace.PhaseCompute, Start: t0, Dur: rec.Now() - t0, Peer: -1})
		}
		comp := time.Since(compStart)
		hr.res.ComputeTime += comp
		hr.perRoundComp = append(hr.perRoundComp, comp)

		syncStart := time.Now()
		rec.SetLivePhase(trace.PhaseSync)
		if err := prog.Sync(updated); err != nil {
			if ok, rerr := rejoin(err); ok {
				continue
			} else if rerr != nil {
				return nil, rerr
			}
			return nil, err
		}
		active := uint64(updated.Count())
		rec.SetLivePhase(trace.PhaseBarrier)
		if tr {
			t0 = rec.Now()
		}
		global, err := g.AllReduceSum(active)
		if err != nil {
			if ok, rerr := rejoin(err); ok {
				continue
			} else if rerr != nil {
				return nil, rerr
			}
			return nil, err
		}
		if tr {
			// The termination all-reduce doubles as the round barrier, so
			// this span is the host's straggler wait.
			rec.Emit(trace.Event{Phase: trace.PhaseBarrier, Start: t0, Dur: rec.Now() - t0,
				Peer: -1, Detail: "termination"})
		}
		syncDur := time.Since(syncStart)
		hr.res.SyncTime += syncDur
		hr.perRoundSync = append(hr.perRoundSync, syncDur)
		cfg.Trace.ObserveRound(comp + syncDur)
		round++
		if global == 0 {
			break
		}
		frontier = updated
		if cw != nil && round%every == 0 {
			if err := checkpoint(round); err != nil {
				if ok, rerr := rejoin(err); ok {
					continue
				} else if rerr != nil {
					return nil, rerr
				}
				return nil, err
			}
		}
	}
	if err := prog.Finalize(); err != nil {
		return nil, err
	}
	if cw != nil {
		// Surface any write error from the final asynchronous checkpoint:
		// a run that "completed" with its protection silently broken
		// should fail loudly instead.
		if err := cw.Close(); err != nil {
			return nil, err
		}
	}
	hr.wall = time.Since(start)
	hr.res.Rounds = round
	hr.res.Gluon = g.Stats()
	hr.res.Host = p.HostID

	if cfg.CollectValues {
		hr.values = make(map[uint64]float64, p.NumMasters)
		for lid := uint32(0); lid < p.NumMasters; lid++ {
			hr.values[p.GID(lid)] = prog.MasterValue(lid)
		}
	}
	return hr, nil
}

// aggregate merges per-host outcomes into a Result.
func aggregate(parts []*partition.Partition, runs []*hostRun, cfg RunConfig) (*Result, error) {
	res := &Result{NumHosts: len(runs)}
	if len(runs) == 0 {
		return res, nil
	}
	res.Algorithm = runs[0].name
	maxRounds := 0
	for _, r := range runs {
		if r.res.Rounds > maxRounds {
			maxRounds = r.res.Rounds
		}
		if r.wall > res.Time {
			res.Time = r.wall
		}
		res.TotalCommBytes += r.res.Gluon.BytesSent()
		res.Hosts = append(res.Hosts, r.res)
	}
	res.Rounds = maxRounds
	// Per-round max across hosts, summed: the paper's max-compute metric,
	// and the same aggregation for sync time so the compute/comm skew per
	// round is visible side by side.
	res.RoundCompute = make([]time.Duration, maxRounds)
	res.RoundComm = make([]time.Duration, maxRounds)
	for round := 0; round < maxRounds; round++ {
		var mc, ms time.Duration
		for _, r := range runs {
			if round < len(r.perRoundComp) && r.perRoundComp[round] > mc {
				mc = r.perRoundComp[round]
			}
			if round < len(r.perRoundSync) && r.perRoundSync[round] > ms {
				ms = r.perRoundSync[round]
			}
		}
		res.RoundCompute[round] = mc
		res.MaxCompute += mc
		res.RoundComm[round] = ms
		res.MaxComm += ms
	}
	if cfg.CollectValues {
		res.Values = make([]float64, parts[0].GlobalNodes)
		for _, r := range runs {
			for gid, v := range r.values {
				res.Values[gid] = v
			}
		}
	}
	return res, nil
}

// LoadImbalance returns max/mean of per-host compute time, the §5.4
// imbalance estimate.
func (r *Result) LoadImbalance() float64 {
	if len(r.Hosts) == 0 {
		return 1
	}
	var max, sum time.Duration
	for _, h := range r.Hosts {
		if h.ComputeTime > max {
			max = h.ComputeTime
		}
		sum += h.ComputeTime
	}
	mean := sum / time.Duration(len(r.Hosts))
	if mean == 0 {
		return 1
	}
	return float64(max) / float64(mean)
}
