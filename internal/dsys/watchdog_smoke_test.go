package dsys_test

// Watchdog smoke gate (`make watchdog-smoke`): a deliberately stalled host
// must be named — host ID and phase — by the watchdog before the BSP
// deadline fires, and a persisting stall must escalate through the
// PeerError path so the cluster terminates with the diagnosis attached
// instead of hanging.

import (
	"errors"
	"io"
	"sync"
	"testing"
	"time"

	"gluon/internal/algorithms/bfs"
	"gluon/internal/comm"
	"gluon/internal/dsys"
	"gluon/internal/gluon"
	"gluon/internal/partition"
	"gluon/internal/trace"
)

// TestWatchdogNamesStalledHost wedges host 1 with FaultTransport delay
// injection (every send held far longer than a healthy round) and checks
// the whole detection pipeline: heartbeat gossip feeds the health table,
// the watchdog flags the overdue round naming host 1 in a non-waiting
// phase, the stall escalates after StallTimeout, and the run fails with a
// *comm.PeerError wrapping the *trace.StallError diagnosis.
func TestWatchdogNamesStalledHost(t *testing.T) {
	const hosts = 3
	_, parts, source := faultParts(t, hosts)
	hub := comm.NewHub(hosts)
	defer hub.Close()
	ts := hub.Endpoints()
	// Host 1 stalls: every send — sync data and heartbeat gossip alike — is
	// held 500ms, far beyond the 100ms round floor below.
	ts[1] = comm.NewFaultTransport(ts[1], comm.FaultConfig{DelayEvery: 1, Delay: 500 * time.Millisecond})

	var mu sync.Mutex
	var reports []*trace.StallReport
	wcfg := &trace.WatchdogConfig{
		MinRound:     100 * time.Millisecond,
		Poll:         5 * time.Millisecond,
		StallTimeout: 250 * time.Millisecond,
		Log:          io.Discard,
		OnReport: func(r *trace.StallReport) {
			mu.Lock()
			reports = append(reports, r)
			mu.Unlock()
		},
	}

	type outcome struct {
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		_, err := dsys.RunWithTransports(parts, ts, dsys.RunConfig{
			Hosts: hosts, Policy: partition.CVC, Opt: gluon.Opt(), Watchdog: wcfg,
		}, bfs.NewGalois(uint64(source), 2))
		done <- outcome{err}
	}()
	var err error
	select {
	case o := <-done:
		err = o.err
	case <-time.After(30 * time.Second):
		t.Fatal("BSP run still blocked after 30s — the watchdog failed to unstick the cluster")
	}

	if err == nil {
		t.Fatal("run with a wedged host succeeded; the stall was never escalated")
	}
	var pe *comm.PeerError
	if !errors.As(err, &pe) {
		t.Fatalf("want *comm.PeerError, got %T: %v", err, err)
	}
	var se *trace.StallError
	if !errors.As(err, &se) {
		t.Fatalf("PeerError does not carry the *trace.StallError diagnosis: %v", err)
	}
	if se.Report.Suspect != 1 {
		t.Errorf("escalated diagnosis names host %d, stalled host is 1", se.Report.Suspect)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(reports) == 0 {
		t.Fatal("watchdog raised no reports")
	}
	first := reports[0]
	if first.Suspect != 1 {
		t.Errorf("first report names host %d, stalled host is 1", first.Suspect)
	}
	// The suspect must be reported in the phase it is wedged in — a
	// non-waiting phase (it is stuck sending, not waiting for others).
	if first.Phase == trace.PhaseRecvWait || first.Phase == trace.PhaseBarrier {
		t.Errorf("suspect reported in waiting phase %q; a wedged sender is not a victim", first.Phase)
	}
	if len(first.Stacks) == 0 {
		t.Error("report carries no goroutine stacks")
	}
	sawEscalation := false
	for _, r := range reports {
		if r.Escalated {
			sawEscalation = true
			if r.Suspect != 1 {
				t.Errorf("escalated report names host %d, want 1", r.Suspect)
			}
		}
	}
	if !sawEscalation {
		t.Error("no escalated report despite StallTimeout; run failed for another reason")
	}
}

// TestWatchdogQuietOnHealthyRun is the false-positive guard: a healthy
// cluster with the watchdog attached (default thresholds) completes with
// zero reports and an unchanged result.
func TestWatchdogQuietOnHealthyRun(t *testing.T) {
	const hosts = 3
	_, parts, source := faultParts(t, hosts)
	hub := comm.NewHub(hosts)
	defer hub.Close()

	var mu sync.Mutex
	var reports []*trace.StallReport
	wcfg := &trace.WatchdogConfig{
		Poll: 5 * time.Millisecond,
		Log:  io.Discard,
		OnReport: func(r *trace.StallReport) {
			mu.Lock()
			reports = append(reports, r)
			mu.Unlock()
		},
	}
	res, err := dsys.RunWithTransports(parts, hub.Endpoints(), dsys.RunConfig{
		Hosts: hosts, Policy: partition.CVC, Opt: gluon.Opt(), Watchdog: wcfg,
	}, bfs.NewGalois(uint64(source), 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds == 0 {
		t.Fatal("run made no rounds")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(reports) != 0 {
		t.Fatalf("healthy run raised %d stall reports; first: %v", len(reports), reports[0])
	}
}
