package dsys_test

import (
	"fmt"
	"testing"

	"gluon/internal/algorithms/bfs"
	"gluon/internal/dsys"
	"gluon/internal/generate"
	"gluon/internal/gluon"
	"gluon/internal/graph"
	"gluon/internal/partition"
	"gluon/internal/ref"
)

// TestRandomizedConfigurations sweeps a deterministic pseudo-random corpus
// of (graph kind, scale, seed, policy, hosts, optimization) configurations
// — fuzzing-lite over the whole stack, catching interactions the
// structured matrices might miss.
func TestRandomizedConfigurations(t *testing.T) {
	kinds := []string{"rmat", "webcrawl", "random", "grid"}
	policies := partition.AllKinds()
	opts := []gluon.Options{
		gluon.Opt(),
		gluon.Unopt(),
		{StructuralInvariants: true},
		{TemporalInvariance: true, Compress: true, CompressThreshold: 64},
		{TemporalInvariance: true, ForceEncoding: gluon.EncodingBitvec},
	}
	// Simple deterministic LCG over the corpus index.
	next := uint64(0x9e3779b97f4a7c15)
	rnd := func(n int) int {
		next = next*6364136223846793005 + 1442695040888963407
		return int((next >> 33) % uint64(n))
	}
	for trial := 0; trial < 12; trial++ {
		kind := kinds[rnd(len(kinds))]
		scale := uint(6 + rnd(4))
		hosts := 1 + rnd(7)
		pol := policies[rnd(len(policies))]
		opt := opts[rnd(len(opts))]
		seed := uint64(rnd(1000))
		name := fmt.Sprintf("t%d-%s-s%d-h%d-%s", trial, kind, scale, hosts, pol)
		t.Run(name, func(t *testing.T) {
			cfg := generate.Config{Kind: kind, Scale: scale, EdgeFactor: 6, Seed: seed}
			edges, err := generate.Edges(cfg)
			if err != nil {
				t.Fatal(err)
			}
			g, err := graph.FromEdges(cfg.NumNodes(), edges, false)
			if err != nil {
				t.Fatal(err)
			}
			source := g.MaxOutDegreeNode()
			want := ref.BFS(g, source)
			res, err := dsys.Run(cfg.NumNodes(), edges, dsys.RunConfig{
				Hosts: hosts, Policy: pol, Opt: opt, CollectValues: true,
			}, bfs.NewGalois(uint64(source), 2))
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			for u, w := range want {
				if float64(w) != res.Values[u] {
					t.Fatalf("node %d: %v, want %d", u, res.Values[u], w)
				}
			}
		})
	}
}
