package dsys_test

import (
	"fmt"
	"math"
	"testing"

	"gluon/internal/algorithms/bfs"
	"gluon/internal/algorithms/cc"
	"gluon/internal/algorithms/pr"
	"gluon/internal/algorithms/sssp"
	"gluon/internal/dsys"
	"gluon/internal/generate"
	"gluon/internal/gluon"
	"gluon/internal/graph"
	"gluon/internal/partition"
	"gluon/internal/ref"
)

// testGraph builds a deterministic rmat test input.
func testGraph(t *testing.T, scale uint, weighted bool) (uint64, []graph.Edge, *graph.CSR) {
	t.Helper()
	cfg := generate.Config{Kind: "rmat", Scale: scale, EdgeFactor: 8, Seed: 42, Weighted: weighted}
	edges, err := generate.Edges(cfg)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	g, err := graph.FromEdges(cfg.NumNodes(), edges, weighted)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return cfg.NumNodes(), edges, g
}

// optConfigs are the four Figure 10 settings.
var optConfigs = map[string]gluon.Options{
	"unopt": {},
	"osi":   {StructuralInvariants: true},
	"oti":   {TemporalInvariance: true},
	"osti":  {StructuralInvariants: true, TemporalInvariance: true},
}

// systems maps a system name to per-algorithm factories.
type factories struct {
	bfs  func(source uint64) dsys.ProgramFactory
	sssp func(source uint64) dsys.ProgramFactory
	cc   func() dsys.ProgramFactory
	pr   func() dsys.ProgramFactory
}

var systems = map[string]factories{
	"d-ligra": {
		bfs:  func(s uint64) dsys.ProgramFactory { return bfs.NewLigra(s, 2) },
		sssp: func(s uint64) dsys.ProgramFactory { return sssp.NewLigra(s, 2) },
		cc:   func() dsys.ProgramFactory { return cc.NewLigra(2) },
		pr:   func() dsys.ProgramFactory { return pr.NewLigra(1e-9, 2) },
	},
	"d-galois": {
		bfs:  func(s uint64) dsys.ProgramFactory { return bfs.NewGalois(s, 2) },
		sssp: func(s uint64) dsys.ProgramFactory { return sssp.NewGalois(s, 2) },
		cc:   func() dsys.ProgramFactory { return cc.NewGalois(2) },
		pr:   func() dsys.ProgramFactory { return pr.NewGalois(1e-9, 2) },
	},
	"d-irgl": {
		bfs:  func(s uint64) dsys.ProgramFactory { return bfs.NewIrGL(s, 2) },
		sssp: func(s uint64) dsys.ProgramFactory { return sssp.NewIrGL(s, 2) },
		cc:   func() dsys.ProgramFactory { return cc.NewIrGL(2) },
		pr:   func() dsys.ProgramFactory { return pr.NewIrGL(1e-9, 2) },
	},
}

func policyOptions(numNodes uint64, g *graph.CSR) partition.Options {
	out := make([]uint32, numNodes)
	for u := uint32(0); u < g.NumNodes(); u++ {
		out[u] = g.OutDegree(u)
	}
	return partition.Options{OutDegrees: out, InDegrees: g.InDegrees()}
}

// TestBFSMatrix validates bfs across systems, policies, host counts, and
// optimization configurations against sequential BFS.
func TestBFSMatrix(t *testing.T) {
	numNodes, edges, g := testGraph(t, 9, false)
	source := g.MaxOutDegreeNode()
	want := ref.BFS(g, source)
	popt := policyOptions(numNodes, g)

	for sysName, f := range systems {
		for _, pol := range partition.AllKinds() {
			for _, hosts := range []int{1, 2, 3, 4} {
				name := fmt.Sprintf("%s/%s/h%d", sysName, pol, hosts)
				t.Run(name, func(t *testing.T) {
					res, err := dsys.Run(numNodes, edges, dsys.RunConfig{
						Hosts: hosts, Policy: pol, Opt: gluon.Opt(),
						PolicyOptions: popt, CollectValues: true,
					}, f.bfs(uint64(source)))
					if err != nil {
						t.Fatalf("run: %v", err)
					}
					checkU32(t, want, res.Values)
				})
			}
		}
	}
}

// TestBFSOptimizationConfigs validates that every optimization setting
// yields identical results.
func TestBFSOptimizationConfigs(t *testing.T) {
	numNodes, edges, g := testGraph(t, 9, false)
	source := g.MaxOutDegreeNode()
	want := ref.BFS(g, source)
	popt := policyOptions(numNodes, g)

	for optName, opt := range optConfigs {
		for _, pol := range partition.AllKinds() {
			t.Run(fmt.Sprintf("%s/%s", optName, pol), func(t *testing.T) {
				res, err := dsys.Run(numNodes, edges, dsys.RunConfig{
					Hosts: 4, Policy: pol, Opt: opt,
					PolicyOptions: popt, CollectValues: true,
				}, bfs.NewGalois(uint64(source), 2))
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				checkU32(t, want, res.Values)
			})
		}
	}
}

// TestSSSPMatrix validates sssp against Dijkstra.
func TestSSSPMatrix(t *testing.T) {
	numNodes, edges, g := testGraph(t, 9, true)
	source := g.MaxOutDegreeNode()
	want := ref.SSSP(g, source)
	popt := policyOptions(numNodes, g)

	for sysName, f := range systems {
		for _, pol := range partition.AllKinds() {
			name := fmt.Sprintf("%s/%s", sysName, pol)
			t.Run(name, func(t *testing.T) {
				res, err := dsys.Run(numNodes, edges, dsys.RunConfig{
					Hosts: 3, Policy: pol, Opt: gluon.Opt(),
					PolicyOptions: popt, CollectValues: true,
				}, f.sssp(uint64(source)))
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				checkU32(t, want, res.Values)
			})
		}
	}
}

// TestSSSPDeltaStepping validates the delta-stepping variant across
// policies and bucket widths.
func TestSSSPDeltaStepping(t *testing.T) {
	numNodes, edges, g := testGraph(t, 9, true)
	source := g.MaxOutDegreeNode()
	want := ref.SSSP(g, source)
	popt := policyOptions(numNodes, g)
	for _, pol := range partition.AllKinds() {
		for _, delta := range []uint32{1, 16, 128} {
			t.Run(fmt.Sprintf("%s/d%d", pol, delta), func(t *testing.T) {
				res, err := dsys.Run(numNodes, edges, dsys.RunConfig{
					Hosts: 3, Policy: pol, Opt: gluon.Opt(),
					PolicyOptions: popt, CollectValues: true,
				}, sssp.NewGaloisDelta(uint64(source), delta, 2))
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				checkU32(t, want, res.Values)
			})
		}
	}
}

// TestCCMatrix validates cc (on the symmetrized graph) against union-find.
func TestCCMatrix(t *testing.T) {
	numNodes, edges, _ := testGraph(t, 9, false)
	symEdges := ref.Symmetrize(edges)
	symG, err := graph.FromEdges(numNodes, symEdges, false)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.CC(symG)
	popt := policyOptions(numNodes, symG)

	for sysName, f := range systems {
		for _, pol := range partition.AllKinds() {
			name := fmt.Sprintf("%s/%s", sysName, pol)
			t.Run(name, func(t *testing.T) {
				res, err := dsys.Run(numNodes, symEdges, dsys.RunConfig{
					Hosts: 4, Policy: pol, Opt: gluon.Opt(),
					PolicyOptions: popt, CollectValues: true,
				}, f.cc())
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				checkU32(t, want, res.Values)
			})
		}
	}
}

// TestPageRankMatrix validates pr ranks against the sequential power
// iteration to a small tolerance.
func TestPageRankMatrix(t *testing.T) {
	numNodes, edges, g := testGraph(t, 9, false)
	want := ref.PageRank(g, pr.Alpha, 1e-9, 100)
	popt := policyOptions(numNodes, g)

	for sysName, f := range systems {
		for _, pol := range partition.AllKinds() {
			name := fmt.Sprintf("%s/%s", sysName, pol)
			t.Run(name, func(t *testing.T) {
				res, err := dsys.Run(numNodes, edges, dsys.RunConfig{
					Hosts: 4, Policy: pol, Opt: gluon.Opt(),
					PolicyOptions: popt, CollectValues: true, MaxRounds: 100,
				}, f.pr())
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				for i, w := range want {
					if math.Abs(res.Values[i]-w) > 1e-6 {
						t.Fatalf("node %d: rank %g, want %g", i, res.Values[i], w)
					}
				}
			})
		}
	}
}

func checkU32(t *testing.T, want []uint32, got []float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("length mismatch: want %d, got %d", len(want), len(got))
	}
	bad := 0
	for i := range want {
		if float64(want[i]) != got[i] {
			bad++
			if bad <= 5 {
				t.Errorf("node %d: got %v, want %d", i, got[i], want[i])
			}
		}
	}
	if bad > 0 {
		t.Fatalf("%d/%d nodes wrong", bad, len(want))
	}
}
