package dsys_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"gluon/internal/comm"
	"gluon/internal/trace"
)

// TestDoctorSmoke is the end-to-end flight-recorder acceptance run (the
// `make doctor-smoke` gate): a 3-host BSP job over a fault-injected
// transport dies mid-run with the recorder armed; the surviving process
// must leave postmortem bundles that gluon-doctor's library loads into a
// diagnosis naming the rank carrying the injected fault, the trigger, and
// the round.
func TestDoctorSmoke(t *testing.T) {
	const hosts = 3
	dir := t.TempDir()

	tr := trace.New(trace.Config{Capacity: 1 << 12, Label: "doctor-smoke"})
	fr := trace.NewFlightRecorder(trace.FlightConfig{Dir: dir, Trace: tr})
	fr.SetRunConfig("doctor-smoke: bfs over fault-injected hub")
	fr.SetPoolCounters(comm.PoolCounters)
	trace.Arm(fr)
	defer trace.Arm(nil)

	_, parts, source := faultParts(t, hosts)
	hub := comm.NewHub(hosts)
	defer hub.Close()
	ts := hub.Endpoints()
	// Host 1's link to host 0 dies after a handful of sends, mid-round.
	ts[1] = comm.NewFaultTransport(ts[1], comm.FaultConfig{KillAfterSends: 5, KillPeer: 0})

	// RunConfig.Trace is nil: dsys must adopt the armed recorder's session,
	// so the bundles carry a timeline even though the test never asked for
	// tracing explicitly.
	if err := runWithDeadline(t, 30*time.Second, parts, ts, source); err == nil {
		t.Fatal("fault-injected run succeeded; expected a peer failure")
	}

	bundles, bad, err := trace.LoadBundles(dir)
	if err != nil {
		t.Fatalf("LoadBundles: %v", err)
	}
	if len(bad) != 0 {
		t.Fatalf("corrupt bundles: %v", bad)
	}

	d := trace.Diagnose(bundles)
	if d.FailedRank != 1 {
		t.Errorf("diagnosis names rank %d, want 1 (the fault-injected host)", d.FailedRank)
	}
	if d.RootTrigger != trace.TriggerInjectedFault {
		t.Errorf("root trigger = %q, want %q", d.RootTrigger, trace.TriggerInjectedFault)
	}
	if d.RootRound < 0 {
		t.Errorf("diagnosis carries no failure round (RootRound = %d)", d.RootRound)
	}
	if len(d.Merged) == 0 {
		t.Error("diagnosis carries no merged timeline — dsys did not adopt the armed recorder's trace")
	}

	var buf bytes.Buffer
	d.WriteReport(&buf)
	out := buf.String()
	if !strings.Contains(out, "host 1 failed first") {
		t.Errorf("report does not name the failed rank:\n%s", out)
	}
	if !strings.Contains(out, string(trace.TriggerInjectedFault)) {
		t.Errorf("report does not name the trigger:\n%s", out)
	}
}
