package dsys_test

// Top smoke: the `make check` gate behind gluon-top. A traced in-process
// cluster ships its trace over the sideband while a programmatic live
// subscription (the same trace.AttachWatcher gluon-top uses) watches the
// collector. The gate asserts the dashboard's two load-bearing signals
// actually flow: nonzero round progress observed live, and a critical-path
// verdict emitted by the incremental attribution engine.

import (
	"testing"
	"time"

	"gluon/internal/algorithms/bfs"
	"gluon/internal/dsys"
	"gluon/internal/generate"
	"gluon/internal/partition"
	"gluon/internal/trace"
)

func TestTopSmoke(t *testing.T) {
	const hosts = 3
	cfg := generate.Config{Kind: "rmat", Scale: 10, EdgeFactor: 8, Seed: 42}
	edges, err := generate.Edges(cfg)
	if err != nil {
		t.Fatal(err)
	}
	numNodes := cfg.NumNodes()
	outDeg := make([]uint32, numNodes)
	inDeg := make([]uint32, numNodes)
	for _, e := range edges {
		outDeg[e.Src]++
		inDeg[e.Dst]++
	}

	col, err := trace.ListenAndCollect("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()

	// Attach the viewer before the run so round progress streams in live.
	w, err := trace.AttachWatcher(col.Addr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	tr := trace.New(trace.Config{Label: "top-smoke"})
	sh, err := trace.StartShipper(trace.ShipperConfig{
		Addr: col.Addr(), Trace: tr, Interval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()

	if _, err := dsys.Run(numNodes, edges, dsys.RunConfig{
		Hosts:         hosts,
		Policy:        partition.CVC,
		Opt:           goldenOpt("osti"),
		PolicyOptions: partition.Options{OutDegrees: outDeg, InDegrees: inDeg},
		MaxRounds:     50,
		Trace:         tr,
	}, bfs.NewLigra(0, 1)); err != nil {
		t.Fatal(err)
	}

	// The run is done; the shipper keeps flushing, so updates must converge
	// on: rounds observed, a verdict, per-host breakdowns, and an active
	// shipper session.
	deadline := time.After(30 * time.Second)
	var u trace.ViewUpdate
	seenSnapshot := false
	for u.Stats.MaxRound < 1 || u.Verdict.Rounds < 1 || len(u.Hosts) == 0 || len(u.Sessions) == 0 {
		select {
		case nu, ok := <-w.Updates():
			if !ok {
				t.Fatalf("live subscription closed early: %v", w.Err())
			}
			if nu.Snapshot {
				seenSnapshot = true
			}
			u = nu
		case <-deadline:
			t.Fatalf("no converged live update: maxRound=%d verdictRounds=%d hosts=%d sessions=%d",
				u.Stats.MaxRound, u.Verdict.Rounds, len(u.Hosts), len(u.Sessions))
		}
	}
	if !seenSnapshot {
		t.Error("subscription never delivered its snapshot update")
	}
	if u.Verdict.String() == "no rounds attributed yet" {
		t.Errorf("verdict did not converge: %q", u.Verdict.String())
	}
	for _, r := range u.Rounds {
		if len(r.Hosts) == 0 {
			t.Errorf("round %d attributed with no hosts", r.Round)
		}
	}
	if u.Ledger.ShippedBytes == 0 || u.Ledger.BaselineBytes < u.Ledger.ShippedBytes {
		t.Errorf("ledger not live: shipped=%d baseline=%d", u.Ledger.ShippedBytes, u.Ledger.BaselineBytes)
	}
	if u.Sessions[0].State != "active" {
		t.Errorf("shipper session state = %q mid-run, want active", u.Sessions[0].State)
	}
}
