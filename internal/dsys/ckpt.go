package dsys

// Checkpoint/restore/rejoin: the survivability layer of the BSP runner.
//
// Checkpoints are taken at round boundaries — the only points where the
// cluster's distributed state is a pure function of per-host local state
// (no messages in flight: every sync and the termination all-reduce have
// completed). A lightweight all-reduce of the round cursor acts as the
// barrier token: it proves every host is snapshotting the same epoch
// without stopping compute for the disk write, which a background
// ckpt.Writer performs asynchronously on copies.
//
// Restore and rejoin share one rendezvous protocol on comm.TagRejoin (see
// rejoinRendezvous). A cold restore is every host entering the rendezvous
// at startup with its newest on-disk epoch; a live rejoin is survivors
// entering it from a *comm.PeerError while a replacement host enters it
// from startup. Either way the cluster agrees on the newest epoch every
// host can load, flushes stale traffic, and resumes the loop from there.

import (
	"fmt"
	"time"

	"gluon/internal/bitset"
	"gluon/internal/ckpt"
	"gluon/internal/comm"
	"gluon/internal/fields"
	"gluon/internal/gluon"
	"gluon/internal/partition"
)

// Checkpointable is implemented by Programs whose field state can be
// exported to and reloaded from a checkpoint. ImportState must decode in
// place (into the same backing arrays the program's gluon.Field accessors
// were built over) so engine variants that alias those arrays — device
// buffers, bit-cast views — observe the restored values.
type Checkpointable interface {
	// ExportState returns the program's field state as named sections.
	// The returned sections must be copies: the checkpoint writer drains
	// them on a background goroutine while the program keeps computing.
	ExportState() ([]ckpt.Section, error)
	// ImportState restores field state from the sections of a checkpoint
	// written by ExportState on the same partition.
	ImportState(secs []ckpt.Section) error
}

// Reserved section names the runner adds next to the program's own.
const (
	// secFrontier holds the BSP frontier bitset's words (fields.EncodeU64s).
	secFrontier = "dsys-frontier"
	// secGluonMemo holds the substrate's memoized master-side exchange
	// orders (gluon.ExportMemo), so a replacement host can rebuild its
	// Gluon without the memoization exchange the survivors cannot answer.
	secGluonMemo = "dsys-gluon-memo"
)

// defaultRejoinTimeout bounds how long the rendezvous waits for each peer
// (survivors waiting out a kill -9 need to outlive operator reaction time).
const defaultRejoinTimeout = 120 * time.Second

func (cfg *RunConfig) rejoinTimeout() time.Duration {
	if cfg.RejoinTimeout > 0 {
		return cfg.RejoinTimeout
	}
	return defaultRejoinTimeout
}

// captureSnapshot assembles one host's checkpoint: the program's sections
// plus the runner's frontier and the substrate's memo. Everything is copied
// before return, so the caller may hand the snapshot to a background writer
// and immediately resume mutating program state.
func captureSnapshot(p *partition.Partition, g *gluon.Gluon, cp Checkpointable,
	alg string, epoch uint64, frontier *bitset.Bitset) (*ckpt.Snapshot, error) {
	secs, err := cp.ExportState()
	if err != nil {
		return nil, fmt.Errorf("dsys: checkpoint export: %w", err)
	}
	secs = append(secs,
		ckpt.Section{Name: secFrontier, Data: fields.EncodeU64s(nil, frontier.Words())},
		ckpt.Section{Name: secGluonMemo, Data: g.ExportMemo()},
	)
	return &ckpt.Snapshot{
		Algorithm: alg,
		Host:      p.HostID,
		NumHosts:  p.NumHosts,
		Epoch:     epoch,
		Sections:  secs,
	}, nil
}

// restoreSnapshot loads snap into the program (in place) and rebuilds the
// frontier bitset. It returns the frontier the loop should resume with.
func restoreSnapshot(p *partition.Partition, cp Checkpointable, snap *ckpt.Snapshot) (*bitset.Bitset, error) {
	fd := snap.Section(secFrontier)
	if fd == nil {
		return nil, fmt.Errorf("dsys: checkpoint epoch %d has no %s section", snap.Epoch, secFrontier)
	}
	n := p.NumProxies()
	words := make([]uint64, (int(n)+63)/64)
	if err := fields.DecodeU64s(fd, words); err != nil {
		return nil, fmt.Errorf("dsys: checkpoint frontier: %w", err)
	}
	frontier, err := bitset.FromWords(words, n)
	if err != nil {
		return nil, fmt.Errorf("dsys: checkpoint frontier: %w", err)
	}
	if err := cp.ImportState(snap.Sections); err != nil {
		return nil, fmt.Errorf("dsys: checkpoint import: %w", err)
	}
	return frontier, nil
}

// recvRejoinFrame receives one TagRejoin frame from a specific peer with a
// deadline. Transports have no timed receive, so the blocking Recv runs on
// a helper goroutine; on timeout the goroutine parks until the transport
// closes (the run is failing anyway) and releases any late payload.
func recvRejoinFrame(t comm.Transport, from int, timeout time.Duration) (kind byte, epoch uint64, err error) {
	type result struct {
		payload []byte
		err     error
	}
	ch := make(chan result, 1)
	go func() {
		p, err := t.Recv(from, comm.TagRejoin)
		ch <- result{p, err}
	}()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case r := <-ch:
		if r.err != nil {
			return 0, 0, r.err
		}
		kind, epoch, err = comm.DecodeRejoinFrame(r.payload)
		comm.PutBuf(r.payload)
		return kind, epoch, err
	case <-timer.C:
		go func() {
			if r := <-ch; r.err == nil {
				comm.PutBuf(r.payload)
			}
		}()
		return 0, 0, fmt.Errorf("dsys: rejoin: no answer from host %d within %v", from, timeout)
	}
}

// rejoinRendezvous runs the two-phase HOLD/RESUME agreement that brings
// every host — survivors, restarted hosts, and a freshly dialed replacement
// — to the same checkpoint epoch with clean mailboxes. localEpoch is this
// host's newest complete on-disk epoch; the return value is the cluster
// minimum, the newest epoch every host can load.
//
// The protocol leans on per-(sender,tag) FIFO ordering:
//
//  1. Quiesce own sends (gluon.WaitSends), so anything this host already
//     put on the wire precedes its HOLD in every peer's queue.
//  2. Send HOLD(epoch) to all peers, recording each link's connection
//     generation. Send failures to dead peers are tolerated — the dead
//     host's replacement will introduce itself with its own HOLD once it
//     dials in.
//  3. Receive HOLD from every peer. TagRejoin is poison-exempt, so this
//     waits out poisoned mailboxes until the replacement arrives. If the
//     peer's connection generation moved since step 2 (or the send
//     failed outright), this host's HOLD went to a dead incarnation —
//     a write on a dying TCP connection can vanish into the socket
//     buffer without an error — so re-send it on the new link, where the
//     replacement is blocked waiting for it.
//  4. Flush: every peer's HOLD has been consumed, so everything stale
//     that peer sent is already queued locally — dropping all non-rejoin
//     queues and curing poisons (comm.Rejoiner) cannot lose fresh data.
//  5. Send RESUME to all, then receive RESUME from all. A peer leaves the
//     rendezvous — and may send post-rollback data — only after it has
//     received this host's RESUME, which follows this host's flush, so
//     fresh data can never race into a queue about to be flushed.
func rejoinRendezvous(t comm.Transport, g *gluon.Gluon, localEpoch uint64, timeout time.Duration) (uint64, error) {
	me, n := t.HostID(), t.NumHosts()
	if g != nil {
		g.WaitSends()
	}
	rj, _ := t.(comm.Rejoiner)
	gens := make([]int, n)
	unreached := make([]bool, n)
	for h := 0; h < n; h++ {
		if h == me {
			continue
		}
		if rj != nil {
			gens[h] = rj.ConnGeneration(h)
		}
		if err := t.Send(h, comm.TagRejoin, comm.EncodeRejoinFrame(comm.RejoinHold, localEpoch)); err != nil {
			// Dead peer: its replacement announces itself with its own
			// HOLD, at which point our HOLD is re-sent over the new link.
			unreached[h] = true
		}
	}
	epoch := localEpoch
	for h := 0; h < n; h++ {
		if h == me {
			continue
		}
		kind, e, err := recvRejoinFrame(t, h, timeout)
		if err != nil {
			return 0, err
		}
		if kind == comm.RejoinResume {
			return 0, fmt.Errorf("dsys: rejoin: host %d sent RESUME, want HOLD", h)
		}
		if e < epoch {
			epoch = e
		}
		if unreached[h] || (rj != nil && rj.ConnGeneration(h) != gens[h]) {
			// The peer's HOLD proves its (replacement's) connection is up;
			// deliver ours, which the dead incarnation may have swallowed.
			// HoldReply, not Hold: the peer is already at the rendezvous,
			// and this frame must not re-poison it after its cure.
			if err := t.Send(h, comm.TagRejoin, comm.EncodeRejoinFrame(comm.RejoinHoldReply, localEpoch)); err != nil {
				return 0, fmt.Errorf("dsys: rejoin hold resend to host %d: %w", h, err)
			}
		}
	}
	if rj, ok := t.(comm.Rejoiner); ok {
		rj.FlushAndCure()
	}
	for h := 0; h < n; h++ {
		if h == me {
			continue
		}
		if err := t.Send(h, comm.TagRejoin, comm.EncodeRejoinFrame(comm.RejoinResume, epoch)); err != nil {
			return 0, fmt.Errorf("dsys: rejoin resume to host %d: %w", h, err)
		}
	}
	for h := 0; h < n; h++ {
		if h == me {
			continue
		}
		// Tolerate a bounded number of duplicate HOLD/HoldReply frames
		// ahead of the RESUME: a conn-generation race can make a peer
		// re-send a HOLD this host already received on the live link.
		kind := byte(0)
		for tries := 0; tries < 3; tries++ {
			var err error
			kind, _, err = recvRejoinFrame(t, h, timeout)
			if err != nil {
				return 0, err
			}
			if kind == comm.RejoinResume {
				break
			}
		}
		if kind != comm.RejoinResume {
			return 0, fmt.Errorf("dsys: rejoin: host %d sent frame kind %d, want RESUME", h, kind)
		}
	}
	return epoch, nil
}
