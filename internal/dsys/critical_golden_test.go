package dsys_test

// Critical-path attribution over a real run. The synthetic goldens in
// internal/trace pin the engine's arithmetic; this file pins its contract
// against the substrate: every BSP round of a seeded 3-host golden-harness
// run is attributed exactly once, the gating host's sequential phase
// durations account for the round wall time (the in-process clock is exact,
// so only barrier-release skew and scheduler noise may remain), the ledger's
// shipped bytes reconcile with the run's own comm accounting, and the whole
// attribution is a deterministic function of the trace.

import (
	"reflect"
	"testing"

	"gluon/internal/algorithms/bfs"
	"gluon/internal/dsys"
	"gluon/internal/generate"
	"gluon/internal/partition"
	"gluon/internal/trace"
)

func TestCriticalPathGoldenRun(t *testing.T) {
	const hosts = 3
	cfg := generate.Config{Kind: "rmat", Scale: 10, EdgeFactor: 8, Seed: 42}
	edges, err := generate.Edges(cfg)
	if err != nil {
		t.Fatal(err)
	}
	numNodes := cfg.NumNodes()
	outDeg := make([]uint32, numNodes)
	inDeg := make([]uint32, numNodes)
	for _, e := range edges {
		outDeg[e.Src]++
		inDeg[e.Dst]++
	}

	tr := trace.New(trace.Config{Label: "critical-golden"})
	res, err := dsys.Run(numNodes, edges, dsys.RunConfig{
		Hosts:         hosts,
		Policy:        partition.CVC,
		Opt:           goldenOpt("osti"),
		PolicyOptions: partition.Options{OutDegrees: outDeg, InDegrees: inDeg},
		MaxRounds:     50,
		Trace:         tr,
	}, bfs.NewLigra(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	events, dropped := tr.Snapshot()
	if dropped != 0 {
		t.Fatalf("dropped %d events; raise capacity for this test", dropped)
	}

	cp := trace.ComputeCriticalPath(trace.Meta{Label: "critical-golden"}, events)

	// Every round attributed exactly once, in order.
	if len(cp.Rounds) != res.Rounds {
		t.Fatalf("attributed %d rounds, run had %d", len(cp.Rounds), res.Rounds)
	}
	for i := range cp.Rounds {
		r := &cp.Rounds[i]
		if r.Round != int32(i) {
			t.Fatalf("round sequence broken: got %d at index %d", r.Round, i)
		}
		if len(r.Hosts) != hosts {
			t.Errorf("round %d attributed %d hosts, want %d", i, len(r.Hosts), hosts)
		}
		if r.Gate < 0 || r.Gate >= hosts {
			t.Fatalf("round %d gate = host %d, out of range", i, r.Gate)
		}
		g := r.HostPath(r.Gate)
		if g == nil {
			t.Fatalf("round %d: gating host %d has no accounting", i, r.Gate)
		}
		// The gate is the last arrival: no other host reached the barrier
		// later (one shared clock, so the comparison is exact).
		for j := range r.Hosts {
			h := &r.Hosts[j]
			if h.ArriveNs > g.ArriveNs {
				t.Errorf("round %d: host %d arrived at %d, after gate %d at %d",
					i, h.Host, h.ArriveNs, r.Gate, g.ArriveNs)
			}
		}
		// Acceptance bar: the gate's sequential segments sum to the round's
		// wall time. In-process the clock uncertainty is zero, so the only
		// residual is the gate starting after the round's first host
		// (barrier-release skew plus scheduler noise) — nonnegative, and
		// far less than the wall itself.
		resid := r.Residual()
		if resid < 0 {
			t.Errorf("round %d: negative residual %d (gate segments exceed wall %d)", i, resid, r.WallNs)
		}
		if slack := r.WallNs/2 + 2_000_000; resid > slack {
			t.Errorf("round %d: residual %dns unexplained of %dns wall (> %dns slack)", i, resid, r.WallNs, slack)
		}
		// The gating phase is the argmax of the gate's own buckets.
		best := trace.CritPhase(0)
		for p := trace.CritPhase(0); p < trace.NumCritPhases; p++ {
			if g.SubNs[p] > g.SubNs[best] {
				best = p
			}
		}
		if r.GatePhase != best {
			t.Errorf("round %d: gate phase %v, argmax of buckets is %v", i, r.GatePhase, best)
		}
	}

	// Verdict covers every round.
	total := 0
	for _, gc := range cp.Verdict.Gates {
		total += gc.Count
	}
	if cp.Verdict.Rounds != res.Rounds || total != res.Rounds {
		t.Errorf("verdict accounts %d/%d gate counts over %d rounds, want %d",
			total, cp.Verdict.Rounds, res.Rounds, res.Rounds)
	}

	// Ledger reconciliation: shipped bytes must equal the substrate's own
	// accounting for the BSP rounds (round -1 memoization traffic is not a
	// round, so it stays outside the per-round baseline model).
	var initBytes uint64
	var syncMsgs uint64
	for _, e := range events {
		if e.Phase != trace.PhaseEncode {
			continue
		}
		if e.Round < 0 {
			initBytes += e.Value + e.Meta + e.GID
		} else {
			syncMsgs++
		}
	}
	l := cp.Ledger
	if l.ShippedBytes+initBytes != res.TotalCommBytes {
		t.Errorf("ledger shipped %d + init %d != run total %d", l.ShippedBytes, initBytes, res.TotalCommBytes)
	}
	if l.Messages != syncMsgs {
		t.Errorf("ledger messages = %d, trace has %d round-tagged encodes", l.Messages, syncMsgs)
	}
	if got := l.ShippedBytes + l.CompressionSavedBytes + l.SparsitySavedBytes + l.InvariantSavedBytes; got != l.BaselineBytes {
		t.Errorf("ledger does not decompose: %d != baseline %d", got, l.BaselineBytes)
	}
	if l.BaselineBytes < l.ShippedBytes {
		t.Errorf("baseline %d below shipped %d", l.BaselineBytes, l.ShippedBytes)
	}

	// Determinism: the attribution is a pure function of the trace — a
	// recompute over the same events pins identical gates, phases, margins,
	// and ledger splits.
	cp2 := trace.ComputeCriticalPath(trace.Meta{Label: "critical-golden"}, events)
	if !reflect.DeepEqual(cp.Rounds, cp2.Rounds) {
		t.Error("recomputed round attribution differs: engine is not deterministic")
	}
	if !reflect.DeepEqual(cp.Verdict, cp2.Verdict) {
		t.Error("recomputed verdict differs")
	}
	if !reflect.DeepEqual(cp.Ledger, cp2.Ledger) {
		t.Error("recomputed ledger differs")
	}
}
