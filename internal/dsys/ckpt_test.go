package dsys_test

// Survivability suite: the crash matrix (satellite of ISSUE 7's tentpole).
// A 3-host PageRank run is killed at every round boundary — and mid-sync
// through FaultTransport — then restored from checkpoint; the restored
// run's converged values must be byte-identical to the fault-free golden.
// A TCP variant kills one rank for real (transport close, like kill -9 as
// seen from the peers) and rejoins a replacement process into the held
// survivors. The buffer-accounting test pins gets == puts across the
// injected-fault scenarios, and the self-poison regression pins that a
// failing host unblocks its OWN parked receivers, not just its peers'.

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"gluon/internal/algorithms/pr"
	"gluon/internal/bitset"
	"gluon/internal/ckpt"
	"gluon/internal/comm"
	"gluon/internal/dsys"
	"gluon/internal/gluon"
	"gluon/internal/partition"
)

const (
	cmHosts     = 3
	cmMaxRounds = 8
	cmTol       = 1e-9 // never converges within cmMaxRounds: fixed round count
)

var errInjectedCrash = errors.New("injected crash at round boundary")

// crashAt wraps a Program so one host's Round fails at a chosen round,
// delegating checkpointing to the inner program.
type crashAt struct {
	dsys.Program
	at    int
	round int
}

func (f *crashAt) Round(frontier *bitset.Bitset) (*bitset.Bitset, error) {
	if f.round == f.at {
		return nil, fmt.Errorf("%w %d", errInjectedCrash, f.at)
	}
	f.round++
	return f.Program.Round(frontier)
}

func (f *crashAt) ExportState() ([]ckpt.Section, error) {
	return f.Program.(dsys.Checkpointable).ExportState()
}

func (f *crashAt) ImportState(secs []ckpt.Section) error {
	return f.Program.(dsys.Checkpointable).ImportState(secs)
}

// crashFactory injects crashAt on one host.
func crashFactory(inner dsys.ProgramFactory, host, at int) dsys.ProgramFactory {
	return func(p *partition.Partition, g *gluon.Gluon) (dsys.Program, error) {
		prog, err := inner(p, g)
		if err != nil || p.HostID != host {
			return prog, err
		}
		return &crashAt{Program: prog, at: at}, nil
	}
}

// cmParts partitions the crash-matrix graph.
func cmParts(t *testing.T) (uint64, []*partition.Partition) {
	t.Helper()
	numNodes, edges, g := testGraph(t, 6, false)
	pol, err := partition.NewPolicy(partition.CVC, numNodes, cmHosts, policyOptions(numNodes, g))
	if err != nil {
		t.Fatal(err)
	}
	parts, err := partition.PartitionAll(numNodes, edges, pol)
	if err != nil {
		t.Fatal(err)
	}
	return numNodes, parts
}

func cmConfig(dir string) dsys.RunConfig {
	return dsys.RunConfig{
		Hosts: cmHosts, Policy: partition.CVC, Opt: gluon.Opt(),
		CollectValues: true, MaxRounds: cmMaxRounds,
		Checkpoint: &ckpt.Options{Dir: dir, Every: 2, Keep: 3},
	}
}

// cmGolden computes the fault-free reference values (checkpointing on, so
// the golden also proves checkpointing itself does not perturb results).
func cmGolden(t *testing.T) []float64 {
	t.Helper()
	_, parts := cmParts(t)
	hub := comm.NewHub(cmHosts)
	defer hub.Close()
	res, err := dsys.RunWithTransports(parts, hub.Endpoints(), cmConfig(t.TempDir()), pr.NewGalois(cmTol, 2))
	if err != nil {
		t.Fatalf("golden run: %v", err)
	}
	return res.Values
}

// mustMatchGolden asserts exact (bit-identical) equality — restored runs
// replay the same deterministic rounds, so there is no tolerance.
func mustMatchGolden(t *testing.T, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d values, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("node %d: restored run yields %v, fault-free run %v (must be byte-identical)",
				i, got[i], want[i])
		}
	}
}

// crashThenRestore runs the job with the given fault injection until it
// fails, then cold-restores the cluster from the shared checkpoint
// directory and returns the recovered values.
func crashThenRestore(t *testing.T, dir string, mkTransports func() []comm.Transport, faulty dsys.ProgramFactory) []float64 {
	t.Helper()
	_, parts := cmParts(t)
	ts := mkTransports()
	_, err := dsys.RunWithTransports(parts, ts, cmConfig(dir), faulty)
	if err == nil {
		t.Fatal("faulted run succeeded; the fault never fired")
	}
	for _, tr := range ts {
		tr.Close()
	}

	_, parts = cmParts(t)
	cfg := cmConfig(dir)
	cfg.Restore = true
	ts = mkTransports()
	defer func() {
		for _, tr := range ts {
			tr.Close()
		}
	}()
	res, rerr := dsys.RunWithTransports(parts, ts, cfg, pr.NewGalois(cmTol, 2))
	if rerr != nil {
		t.Fatalf("restore run: %v", rerr)
	}
	return res.Values
}

// TestCrashMatrix kills host 1 at every round boundary of the run, then at
// several mid-sync points (FaultTransport severs the wire while field data
// is in flight), restoring from checkpoint each time.
func TestCrashMatrix(t *testing.T) {
	golden := cmGolden(t)
	inner := pr.NewGalois(cmTol, 2)

	for at := 0; at < cmMaxRounds; at++ {
		t.Run(fmt.Sprintf("round-%d", at), func(t *testing.T) {
			var hubs []*comm.Hub
			mk := func() []comm.Transport {
				h := comm.NewHub(cmHosts)
				hubs = append(hubs, h)
				return h.Endpoints()
			}
			defer func() {
				for _, h := range hubs {
					h.Close()
				}
			}()
			got := crashThenRestore(t, t.TempDir(), mk, crashFactory(inner, 1, at))
			mustMatchGolden(t, got, golden)
		})
	}

	// Mid-sync: the wire from host 1 to host 0 dies after N frames, well
	// inside a field sync (after the mesh, barrier, Init sync, and the
	// epoch-0 token have used the link).
	for _, kills := range []int{10, 14, 20} {
		t.Run(fmt.Sprintf("midsync-%d", kills), func(t *testing.T) {
			var hubs []*comm.Hub
			first := true
			mk := func() []comm.Transport {
				h := comm.NewHub(cmHosts)
				hubs = append(hubs, h)
				ts := h.Endpoints()
				if first {
					first = false
					ts[1] = comm.NewFaultTransport(ts[1], comm.FaultConfig{KillAfterSends: kills, KillPeer: 0})
				}
				return ts
			}
			defer func() {
				for _, h := range hubs {
					h.Close()
				}
			}()
			got := crashThenRestore(t, t.TempDir(), mk, inner)
			mustMatchGolden(t, got, golden)
		})
	}
}

// TestRestoreRequiresCheckpointable: enabling checkpointing for a program
// that cannot export state must fail up front, not at the first epoch.
func TestRestoreRequiresCheckpointable(t *testing.T) {
	_, parts := cmParts(t)
	hub := comm.NewHub(cmHosts)
	defer hub.Close()
	cfg := cmConfig(t.TempDir())
	// bfs programs predate the Checkpointable interface.
	_, err := dsys.RunWithTransports(parts, hub.Endpoints(), cfg, func(p *partition.Partition, g *gluon.Gluon) (dsys.Program, error) {
		prog, err := pr.NewGalois(cmTol, 2)(p, g)
		if err != nil {
			return nil, err
		}
		return struct{ dsys.Program }{prog}, nil // strips Checkpointable
	})
	if err == nil {
		t.Fatal("checkpointing a non-Checkpointable program succeeded")
	}
}

// TestRejoinTCP is the kill/replace scenario over real sockets: one rank
// dies mid-run (its process-side transport closes, as peers of a kill -9
// observe), the survivors hold at the rejoin rendezvous, and a replacement
// process dials back into the mesh, restores from the dead rank's
// checkpoints, and the cluster finishes with byte-identical results.
func TestRejoinTCP(t *testing.T) {
	golden := cmGolden(t)
	_, parts := cmParts(t)
	dir := t.TempDir()

	const basePort = 43550
	addrs := make([]string, cmHosts)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("127.0.0.1:%d", basePort+i)
	}
	eps := make([]comm.Transport, cmHosts)
	var dialWG sync.WaitGroup
	for i := 0; i < cmHosts; i++ {
		dialWG.Add(1)
		go func(i int) {
			defer dialWG.Done()
			ep, err := comm.DialTCPConfig(i, addrs, comm.DialConfig{Timeout: 10 * time.Second})
			if err != nil {
				t.Errorf("dial %d: %v", i, err)
				return
			}
			eps[i] = ep
		}(i)
	}
	dialWG.Wait()
	if t.Failed() {
		t.FailNow()
	}

	cfg := cmConfig(dir)
	cfg.Rejoin = true
	cfg.RejoinTimeout = 60 * time.Second

	inner := pr.NewGalois(cmTol, 2)
	type outcome struct {
		host int
		res  *dsys.Result
		err  error
	}
	results := make(chan outcome, cmHosts+1)
	for h := 0; h < cmHosts; h++ {
		factory := inner
		if h == 1 {
			factory = crashFactory(inner, 1, 3) // victim dies at round 3
		}
		go func(h int, f dsys.ProgramFactory) {
			res, err := dsys.RunSingle(parts[h], eps[h], cfg, f)
			results <- outcome{h, res, err}
		}(h, factory)
	}

	// Wait for the victim's death (RunSingle closes its transport, so the
	// survivors' links to rank 1 break exactly as they would on kill -9).
	select {
	case o := <-results:
		if o.host != 1 || o.err == nil {
			t.Fatalf("expected host 1 to die first, got host %d err=%v", o.host, o.err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("victim never died")
	}

	// Replacement: a fresh process-side rank 1 dials the survivors back
	// (RejoinTCP) and restores from the shared checkpoint directory.
	rep, err := comm.RejoinTCP(1, addrs, comm.DialConfig{Timeout: 20 * time.Second})
	if err != nil {
		t.Fatalf("rejoin dial: %v", err)
	}
	rcfg := cfg
	rcfg.Restore = true
	go func() {
		res, err := dsys.RunSingle(parts[1], rep, rcfg, inner)
		results <- outcome{1, res, err}
	}()

	merged := make([]float64, len(golden))
	for got := 0; got < cmHosts; got++ {
		select {
		case o := <-results:
			if o.err != nil {
				t.Fatalf("host %d: %v", o.host, o.err)
			}
			// RunSingle reports local masters only; overlay into the
			// global view (PageRank values are strictly positive).
			for gid, v := range o.res.Values {
				if v != 0 {
					merged[gid] = v
				}
			}
		case <-time.After(120 * time.Second):
			t.Fatal("cluster never finished after rejoin")
		}
	}
	for _, ep := range eps {
		if ep != nil {
			ep.Close()
		}
	}
	rep.Close()
	mustMatchGolden(t, merged, golden)
}

// TestPoolBalanceUnderFaults pins the payload-ownership contract: across
// the injected-fault scenarios (killed links, truncated frames, a full
// crash/restore cycle) every pooled buffer handed out is returned —
// gets == puts — so error paths cannot leak sync payloads.
func TestPoolBalanceUnderFaults(t *testing.T) {
	comm.SetPoolAccounting(true)
	defer comm.SetPoolAccounting(false)

	_, parts := cmParts(t)
	for name, fcfg := range map[string]comm.FaultConfig{
		"kill-conn":       {KillAfterSends: 5, KillPeer: 0},
		"truncated-frame": {TruncateRecvAfter: 5},
	} {
		hub := comm.NewHub(cmHosts)
		ts := hub.Endpoints()
		ts[1] = comm.NewFaultTransport(ts[1], fcfg)
		if _, err := dsys.RunWithTransports(parts, ts, cmConfig(t.TempDir()), pr.NewGalois(cmTol, 2)); err == nil {
			t.Fatalf("%s: faulted run succeeded", name)
		}
		hub.Close()
	}
	// A crash + cold restore cycle exercises the rejoin and writer paths.
	var hubs []*comm.Hub
	mk := func() []comm.Transport {
		h := comm.NewHub(cmHosts)
		hubs = append(hubs, h)
		return h.Endpoints()
	}
	crashThenRestore(t, t.TempDir(), mk, crashFactory(pr.NewGalois(cmTol, 2), 1, 2))
	for _, h := range hubs {
		h.Close()
	}

	// Send goroutines may still be draining after the runs return; poll.
	deadline := time.Now().Add(5 * time.Second)
	for {
		gets, puts := comm.PoolCounters()
		if gets == puts {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("pooled buffer leak: %d gets vs %d puts (%d buffers lost)", gets, puts, gets-puts)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFailingHostPoisonsOwnTransport is the satellite-3 regression: a host
// whose program fails AFTER the final barrier (in Finalize, when no peer
// will fail a collective for it) must have its own transport poisoned by
// the runner, so helper goroutines parked in Recv/RecvAny on that
// transport fail fast instead of blocking until process teardown.
func TestFailingHostPoisonsOwnTransport(t *testing.T) {
	_, parts := cmParts(t)
	hub := comm.NewHub(cmHosts)
	defer hub.Close()
	ts := hub.Endpoints()

	// A helper parked on the failing host's own transport — the shape of a
	// watchdog gossip drain.
	unblocked := make(chan error, 1)
	go func() {
		_, payload, err := ts[1].RecvAny(comm.TagHeartbeat, nil)
		comm.PutBuf(payload)
		unblocked <- err
	}()

	factory := func(p *partition.Partition, g *gluon.Gluon) (dsys.Program, error) {
		prog, err := pr.NewGalois(cmTol, 2)(p, g)
		if err != nil || p.HostID != 1 {
			return prog, err
		}
		return &failFinalize{prog}, nil
	}
	cfg := dsys.RunConfig{Hosts: cmHosts, Policy: partition.CVC, Opt: gluon.Opt(), MaxRounds: 3}
	if _, err := dsys.RunWithTransports(parts, ts, cfg, factory); err == nil {
		t.Fatal("run with failing Finalize succeeded")
	}
	select {
	case err := <-unblocked:
		if err == nil {
			t.Fatal("parked RecvAny returned without an error")
		}
		var pe *comm.PeerError
		if !errors.As(err, &pe) {
			t.Fatalf("parked RecvAny got %T (%v), want *comm.PeerError", err, err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("helper goroutine still parked in RecvAny after the host failed: own-transport poisoning regressed")
	}
}

type failFinalize struct{ dsys.Program }

func (f *failFinalize) Finalize() error { return errors.New("injected finalize failure") }
