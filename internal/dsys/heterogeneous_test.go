package dsys_test

import (
	"math"
	"testing"

	"gluon/internal/algorithms/bfs"
	"gluon/internal/algorithms/pr"
	"gluon/internal/dsys"
	"gluon/internal/gluon"
	"gluon/internal/partition"
	"gluon/internal/ref"
)

// TestHeterogeneousEngines: the Figure 1 scenario — different engines on
// different hosts, coupled by the same substrate, must agree with the
// sequential reference. Gluon is engine-agnostic: only byte payloads cross
// hosts.
func TestHeterogeneousEngines(t *testing.T) {
	numNodes, edges, g := testGraph(t, 9, false)
	source := g.MaxOutDegreeNode()
	want := ref.BFS(g, source)

	ligraF := bfs.NewLigra(uint64(source), 2)
	galoisF := bfs.NewGalois(uint64(source), 2)
	irglF := bfs.NewIrGL(uint64(source), 2)
	mixed := func(p *partition.Partition, gl *gluon.Gluon) (dsys.Program, error) {
		switch p.HostID % 3 {
		case 0:
			return ligraF(p, gl)
		case 1:
			return galoisF(p, gl)
		default:
			return irglF(p, gl)
		}
	}
	for _, pol := range partition.AllKinds() {
		res, err := dsys.Run(numNodes, edges, dsys.RunConfig{
			Hosts: 6, Policy: pol, Opt: gluon.Opt(),
			PolicyOptions: policyOptions(numNodes, g), CollectValues: true,
		}, mixed)
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		for i, w := range want {
			if float64(w) != res.Values[i] {
				t.Fatalf("%s: node %d = %v, want %d", pol, i, res.Values[i], w)
			}
		}
	}
}

// TestHeterogeneousPR: mixed engines also agree on an iterative float
// algorithm (pull pagerank runs synchronously regardless of engine, so
// values match the reference exactly to tolerance).
func TestHeterogeneousPR(t *testing.T) {
	numNodes, edges, g := testGraph(t, 9, false)
	want := ref.PageRank(g, pr.Alpha, 1e-9, 100)

	ligraF := pr.NewLigra(1e-9, 2)
	irglF := pr.NewIrGL(1e-9, 2)
	mixed := func(p *partition.Partition, gl *gluon.Gluon) (dsys.Program, error) {
		if p.HostID%2 == 0 {
			return ligraF(p, gl)
		}
		return irglF(p, gl)
	}
	res, err := dsys.Run(numNodes, edges, dsys.RunConfig{
		Hosts: 4, Policy: partition.CVC, Opt: gluon.Opt(),
		PolicyOptions: policyOptions(numNodes, g), CollectValues: true, MaxRounds: 100,
	}, mixed)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range want {
		if math.Abs(res.Values[i]-w) > 1e-6 {
			t.Fatalf("node %d: %g, want %g", i, res.Values[i], w)
		}
	}
}
