package dsys

// Cluster watchdog wiring: heartbeat gossip over the data transport plus a
// trace.Watchdog monitoring the gossip. Hosts periodically broadcast a
// compact fixed-size liveness frame (round, live phase, cumulative encode
// bytes, last-touch time) on the reserved TagHeartbeat; every endpoint also
// drains incoming heartbeats into a shared Health table. The watchdog flags
// a round that exceeds the trailing-median threshold, names the suspect
// host and phase, and — when the stall persists — escalates through the
// comm.PeerFailer path so every blocked receive in the cluster fails with a
// *comm.PeerError wrapping the *trace.StallError diagnosis instead of
// hanging forever.
//
// The gossip is fire-and-forget: send errors are ignored (a dying transport
// ends the gossip, it never fails the run), frames are pooled, and nothing
// here touches the sync hot path — when RunConfig.Watchdog is nil none of
// this code runs at all.

import (
	"encoding/binary"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"gluon/internal/comm"
	"gluon/internal/trace"
)

// hbFrameLen is the heartbeat wire size: host(4) round(4) phase(1) flags(1)
// bytes(8) beat(8), little-endian.
const hbFrameLen = 26

// heartbeat frame flags.
const hbFlagBye = 1 // sender is shutting its gossip down (sent to self)

func encodeHeartbeat(buf []byte, hb trace.Heartbeat, flags byte) {
	binary.LittleEndian.PutUint32(buf[0:4], uint32(hb.Host))
	binary.LittleEndian.PutUint32(buf[4:8], uint32(hb.Round))
	buf[8] = byte(hb.Phase)
	buf[9] = flags
	binary.LittleEndian.PutUint64(buf[10:18], hb.Bytes)
	binary.LittleEndian.PutUint64(buf[18:26], uint64(hb.BeatNs))
}

func decodeHeartbeat(b []byte) (hb trace.Heartbeat, flags byte, err error) {
	if len(b) != hbFrameLen {
		return hb, 0, fmt.Errorf("dsys: heartbeat frame is %d bytes, want %d", len(b), hbFrameLen)
	}
	hb.Host = int32(binary.LittleEndian.Uint32(b[0:4]))
	hb.Round = int32(binary.LittleEndian.Uint32(b[4:8]))
	hb.Phase = trace.Phase(b[8])
	flags = b[9]
	hb.Bytes = binary.LittleEndian.Uint64(b[10:18])
	hb.BeatNs = int64(binary.LittleEndian.Uint64(b[18:26]))
	return hb, flags, nil
}

// wdEndpoint is one locally-driven host: its rank and its transport.
type wdEndpoint struct {
	host int
	t    comm.Transport
}

// runWatchdog is the per-run (per-process) watchdog instance: gossip
// goroutines for every local endpoint plus the monitor.
type runWatchdog struct {
	w      *trace.Watchdog
	health *trace.Health
	stops  []chan struct{}
	wg     sync.WaitGroup
}

// startRunWatchdog wires gossip and monitoring over the given local
// endpoints. numHosts is the cluster size (endpoints may be a subset when
// each process drives one host). The returned runWatchdog must be stopped
// after the BSP drivers return.
func startRunWatchdog(tr *trace.Trace, eps []wdEndpoint, numHosts int, wcfg trace.WatchdogConfig) *runWatchdog {
	health := trace.NewHealth(tr.Now)
	rw := &runWatchdog{health: health}
	// Postmortem bundles carry the cluster-wide heartbeat table when the
	// flight recorder is armed (nil-safe when disarmed).
	trace.Armed().SetHealth(health)

	gossipEvery := wcfg.Poll
	if gossipEvery <= 0 {
		gossipEvery = 50 * time.Millisecond
	}
	for _, ep := range eps {
		ep := ep
		rec := tr.Recorder(ep.host)
		stop := make(chan struct{})
		rw.stops = append(rw.stops, stop)
		// Sender: publish this host's liveness locally and to every peer.
		rw.wg.Add(1)
		go func() {
			defer rw.wg.Done()
			tick := time.NewTicker(gossipEvery)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					// Wake the drain loop with a bye-to-self; Send-to-self
					// loops back locally on every transport.
					buf := comm.GetBuf(hbFrameLen)
					encodeHeartbeat(buf, trace.HeartbeatOf(rec), hbFlagBye)
					_ = ep.t.Send(ep.host, comm.TagHeartbeat, buf)
					return
				case <-tick.C:
					hb := trace.HeartbeatOf(rec)
					health.Update(hb)
					for peer := 0; peer < numHosts; peer++ {
						if peer == ep.host {
							continue
						}
						buf := comm.GetBuf(hbFrameLen)
						encodeHeartbeat(buf, hb, 0)
						// Fire-and-forget: a failed peer's heartbeats simply
						// stop; the watchdog notices the silence, not the error.
						_ = ep.t.Send(peer, comm.TagHeartbeat, buf)
					}
				}
			}
		}()
		// Drain: fold incoming gossip into the shared health table.
		rw.wg.Add(1)
		go func() {
			defer rw.wg.Done()
			for {
				from, payload, err := ep.t.RecvAny(comm.TagHeartbeat, nil)
				if err != nil {
					return // transport closed or peer poisoned; gossip is over
				}
				hb, flags, derr := decodeHeartbeat(payload)
				comm.PutBuf(payload)
				if derr != nil {
					continue
				}
				if flags&hbFlagBye != 0 && from == ep.host {
					return
				}
				health.Update(hb)
			}
		}()
	}

	// Escalated stalls fail the cluster through the PeerError path: the
	// suspect's own endpoint (if local) poisons all its peers so the suspect
	// unblocks too, and every other endpoint poisons the suspect.
	userReport := wcfg.OnReport
	wcfg.OnReport = func(r *trace.StallReport) {
		if userReport != nil {
			userReport(r)
		}
		if !r.Escalated {
			return
		}
		stallErr := &trace.StallError{Report: r}
		// Freeze a postmortem before the PeerError cascade starts: the stall
		// bundle names the suspect (Peer) so doctor can attribute the death
		// even though the detector, not the suspect, writes it.
		if len(eps) > 0 {
			trace.Crash(trace.DumpInfo{
				Trigger: trace.TriggerStall,
				Host:    eps[0].host,
				Peer:    int(r.Suspect),
				Round:   int(r.Round),
				Phase:   r.Phase,
				Cause:   stallErr,
				Detail:  r.String(),
			})
		}
		for _, ep := range eps {
			pf, ok := ep.t.(comm.PeerFailer)
			if !ok {
				continue
			}
			if int32(ep.host) == r.Suspect {
				for peer := 0; peer < numHosts; peer++ {
					if peer != ep.host {
						pf.FailPeer(peer, stallErr)
					}
				}
			} else {
				pf.FailPeer(int(r.Suspect), stallErr)
			}
		}
	}
	if wcfg.Log == nil {
		// Fail loudly by default, through the structured handler so stall
		// paragraphs also land in postmortem bundles' recent-log rings.
		wcfg.Log = trace.LogWriter(trace.NewLogger("dsys"), slog.LevelWarn)
	}
	rw.w = trace.StartWatchdog(tr, health, wcfg)
	return rw
}

// stop shuts the gossip down (bye-to-self wakes each drain) and stops the
// monitor. Safe to call with transports already closed.
func (rw *runWatchdog) stop() {
	for _, ch := range rw.stops {
		close(ch)
	}
	rw.wg.Wait()
	rw.w.Stop()
}

// Reports exposes the monitor's reports (for tests and callers that want
// the diagnosis even when the run completed).
func (rw *runWatchdog) reports() []*trace.StallReport { return rw.w.Reports() }

// suspendWatch pauses stall escalation for a declared quiet window — a
// checkpoint barrier token or a rejoin rendezvous — so the watchdog does
// not read deliberate holding as a stall and fail a recovering cluster.
// Nil-safe: a run without a watchdog calls through freely. Suspensions
// nest (multiple local hosts checkpointing concurrently each suspend).
func (rw *runWatchdog) suspendWatch() {
	if rw == nil {
		return
	}
	rw.w.Suspend()
}

// resumeWatch reverses suspendWatch and clears the health table: after a
// rollback, hosts legitimately gossip SMALLER round numbers, which the
// table's stale-heartbeat filter would otherwise discard forever.
func (rw *runWatchdog) resumeWatch() {
	if rw == nil {
		return
	}
	rw.health.Reset()
	rw.w.Resume()
}

// ensureLivenessTrace guarantees cfg carries a Trace for the watchdog's
// liveness atomics. When the caller did not ask for tracing, the session is
// created disabled: SetRound/SetLivePhase still publish heartbeats (plain
// atomic stores), but Emit discards before touching any ring, so the sync
// hot path stays allocation-free.
func ensureLivenessTrace(cfg *RunConfig) {
	if cfg.Trace == nil {
		cfg.Trace = trace.New(trace.Config{Capacity: 1 << 10})
		cfg.Trace.SetEnabled(false)
	}
}
