package dsys_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"gluon/internal/algorithms/bfs"
	"gluon/internal/comm"
	"gluon/internal/dsys"
	"gluon/internal/generate"
	"gluon/internal/gluon"
	"gluon/internal/graph"
	"gluon/internal/partition"
	"gluon/internal/ref"
)

// TestRunOverTCP: the full distributed system over real sockets produces
// the same results as over the in-process hub.
func TestRunOverTCP(t *testing.T) {
	const hosts = 3
	numNodes, edges, g := testGraph(t, 9, false)
	source := g.MaxOutDegreeNode()
	want := ref.BFS(g, source)

	popt := policyOptions(numNodes, g)
	pol, err := partition.NewPolicy(partition.CVC, numNodes, hosts, popt)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := partition.PartitionAll(numNodes, edges, pol)
	if err != nil {
		t.Fatal(err)
	}

	addrs := make([]string, hosts)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("127.0.0.1:%d", 42310+i)
	}
	eps := make([]comm.Transport, hosts)
	var wg sync.WaitGroup
	errs := make([]error, hosts)
	for i := 0; i < hosts; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ep, err := comm.DialTCP(i, addrs)
			if err != nil {
				errs[i] = err
				return
			}
			eps[i] = ep
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
	}
	defer func() {
		for _, ep := range eps {
			ep.Close()
		}
	}()

	res, err := dsys.RunWithTransports(parts, eps, dsys.RunConfig{
		Hosts: hosts, Policy: partition.CVC, Opt: gluon.Opt(), CollectValues: true,
	}, bfs.NewGalois(uint64(source), 2))
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range want {
		if float64(w) != res.Values[i] {
			t.Fatalf("node %d: got %v, want %d", i, res.Values[i], w)
		}
	}
}

// TestGaloisFewerRoundsThanLigra: on a high-diameter graph, the
// asynchronous engine propagates updates within a host in a single round,
// so it needs far fewer BSP rounds than the level-synchronous engine — the
// effect the paper reports in §5.4 ("D-Ligra has 2-4x more rounds").
func TestGaloisFewerRoundsThanLigra(t *testing.T) {
	cfg := generate.Config{Kind: "chain", Scale: 10, EdgeFactor: 1, Seed: 1}
	edges, err := generate.Edges(cfg)
	if err != nil {
		t.Fatal(err)
	}
	run := func(factory dsys.ProgramFactory) *dsys.Result {
		res, err := dsys.Run(cfg.NumNodes(), edges, dsys.RunConfig{
			Hosts: 4, Policy: partition.OEC, Opt: gluon.Opt(), CollectValues: true,
		}, factory)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	lig := run(bfs.NewLigra(0, 2))
	gal := run(bfs.NewGalois(0, 2))

	// Both must be correct.
	g, err := graph.FromEdges(cfg.NumNodes(), edges, false)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.BFS(g, 0)
	for i, w := range want {
		if float64(w) != lig.Values[i] || float64(w) != gal.Values[i] {
			t.Fatalf("node %d wrong: ligra %v galois %v want %d", i, lig.Values[i], gal.Values[i], w)
		}
	}
	// A 1024-node chain over 4 hosts: level-sync needs ~one round per hop
	// (~1023); async needs ~one round per host boundary (~4).
	if gal.Rounds*10 > lig.Rounds {
		t.Fatalf("galois rounds %d not ≪ ligra rounds %d", gal.Rounds, lig.Rounds)
	}
}

// TestNetModelSlowsVolume: under a modeled link, a run that moves more
// bytes takes proportionally longer — the mechanism timing experiments
// rely on.
func TestNetModelSlowsVolume(t *testing.T) {
	numNodes, edges, g := testGraph(t, 10, false)
	popt := policyOptions(numNodes, g)
	run := func(net comm.NetModel) *dsys.Result {
		res, err := dsys.Run(numNodes, edges, dsys.RunConfig{
			Hosts: 4, Policy: partition.CVC, Opt: gluon.Opt(),
			PolicyOptions: popt, MaxRounds: 10, Net: net,
		}, bfs.NewGalois(uint64(g.MaxOutDegreeNode()), 2))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fast := run(comm.NetModel{})
	slow := run(comm.NetModel{Latency: 2 * time.Millisecond})
	if slow.Time < fast.Time+10*time.Millisecond {
		t.Fatalf("modeled run %v not slower than unmodeled %v", slow.Time, fast.Time)
	}
}

// TestLoadImbalanceMetric sanity-checks the §5.4 imbalance estimate.
func TestLoadImbalanceMetric(t *testing.T) {
	numNodes, edges, g := testGraph(t, 9, false)
	res, err := dsys.Run(numNodes, edges, dsys.RunConfig{
		Hosts: 4, Policy: partition.OEC, Opt: gluon.Opt(),
		PolicyOptions: policyOptions(numNodes, g),
	}, bfs.NewGalois(uint64(g.MaxOutDegreeNode()), 2))
	if err != nil {
		t.Fatal(err)
	}
	if li := res.LoadImbalance(); li < 1 {
		t.Fatalf("imbalance %f < 1", li)
	}
	empty := &dsys.Result{}
	if empty.LoadImbalance() != 1 {
		t.Fatal("empty imbalance")
	}
}

// TestHostResultsPopulated: per-host measurements carry rounds, times and
// Gluon stats.
func TestHostResultsPopulated(t *testing.T) {
	numNodes, edges, g := testGraph(t, 9, false)
	res, err := dsys.Run(numNodes, edges, dsys.RunConfig{
		Hosts: 3, Policy: partition.HVC, Opt: gluon.Opt(),
		PolicyOptions: policyOptions(numNodes, g),
	}, bfs.NewGalois(uint64(g.MaxOutDegreeNode()), 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hosts) != 3 {
		t.Fatalf("%d host results", len(res.Hosts))
	}
	var sent uint64
	for _, h := range res.Hosts {
		if h.Rounds == 0 {
			t.Fatalf("host %d: zero rounds", h.Host)
		}
		sent += h.Gluon.BytesSent()
	}
	if sent != res.TotalCommBytes {
		t.Fatalf("per-host bytes %d != total %d", sent, res.TotalCommBytes)
	}
	if res.TotalCommBytes == 0 {
		t.Fatal("no communication recorded")
	}
}
