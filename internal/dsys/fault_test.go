package dsys_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"gluon/internal/algorithms/bfs"
	"gluon/internal/comm"
	"gluon/internal/dsys"
	"gluon/internal/gluon"
	"gluon/internal/partition"
	"gluon/internal/ref"
)

// faultParts partitions a small deterministic graph for the fault suite.
func faultParts(t *testing.T, hosts int) (uint64, []*partition.Partition, uint32) {
	t.Helper()
	numNodes, edges, g := testGraph(t, 8, false)
	source := g.MaxOutDegreeNode()
	pol, err := partition.NewPolicy(partition.CVC, numNodes, hosts, policyOptions(numNodes, g))
	if err != nil {
		t.Fatal(err)
	}
	parts, err := partition.PartitionAll(numNodes, edges, pol)
	if err != nil {
		t.Fatal(err)
	}
	return numNodes, parts, source
}

// runWithDeadline runs a dsys job and fails the test if it does not
// terminate — success or error — within the deadline. The whole point of
// the fault-tolerance layer is that a faulty cluster terminates.
func runWithDeadline(t *testing.T, d time.Duration, parts []*partition.Partition, ts []comm.Transport, source uint32) error {
	t.Helper()
	type outcome struct {
		res *dsys.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := dsys.RunWithTransports(parts, ts, dsys.RunConfig{
			Hosts: len(parts), Policy: partition.CVC, Opt: gluon.Opt(),
		}, bfs.NewGalois(uint64(source), 2))
		done <- outcome{res, err}
	}()
	select {
	case o := <-done:
		return o.err
	case <-time.After(d):
		t.Fatalf("BSP run still blocked after %v — the cluster hung instead of failing", d)
		return nil
	}
}

// tcpTransports dials a loopback mesh for the fault suite.
func tcpTransports(t *testing.T, hosts, basePort int) []comm.Transport {
	t.Helper()
	addrs := make([]string, hosts)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("127.0.0.1:%d", basePort+i)
	}
	eps := make([]comm.Transport, hosts)
	var wg sync.WaitGroup
	errs := make([]error, hosts)
	for i := 0; i < hosts; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ep, err := comm.DialTCPConfig(i, addrs, comm.DialConfig{Timeout: 10 * time.Second})
			if err != nil {
				errs[i] = err
				return
			}
			eps[i] = ep
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
	}
	t.Cleanup(func() {
		for _, ep := range eps {
			ep.Close()
		}
	})
	return eps
}

// TestBSPPeerDeath is the acceptance scenario: a full BSP run over
// FaultTransport with one peer link killed mid-round must terminate with a
// typed *comm.PeerError naming the dead host within the deadline — on both
// the in-process and the TCP transport (and under -race via `make check`).
func TestBSPPeerDeath(t *testing.T) {
	const hosts = 3
	faults := map[string]comm.FaultConfig{
		// Host 1's link to host 0 drops after a handful of messages —
		// mid-round, well after the mesh and the initial barrier are up.
		"kill-conn": {KillAfterSends: 5, KillPeer: 0},
		// The 5th frame host 1 receives arrives truncated; its sender is
		// poisoned as a malformed-frame peer.
		"truncated-frame": {TruncateRecvAfter: 5},
	}
	for name, fcfg := range faults {
		for ti, transport := range []string{"inproc", "tcp"} {
			t.Run(name+"/"+transport, func(t *testing.T) {
				_, parts, source := faultParts(t, hosts)
				var ts []comm.Transport
				if transport == "inproc" {
					hub := comm.NewHub(hosts)
					defer hub.Close()
					ts = hub.Endpoints()
				} else {
					ts = tcpTransports(t, hosts, 42400+10*ti+len(name))
				}
				// Host 1 runs over the faulty substrate; the rest are clean.
				ts[1] = comm.NewFaultTransport(ts[1], fcfg)

				err := runWithDeadline(t, 30*time.Second, parts, ts, source)
				if err == nil {
					t.Fatal("BSP run over a dying transport succeeded")
				}
				var pe *comm.PeerError
				if !errors.As(err, &pe) {
					t.Fatalf("want *comm.PeerError, got %T: %v", err, err)
				}
				// The failure names a host on the dead link: the killed
				// peer (0) as seen by host 1, or host 1 itself as seen by
				// a survivor after propagation.
				if pe.Host != 0 && pe.Host != 1 {
					t.Fatalf("PeerError names host %d, want 0 or 1: %v", pe.Host, err)
				}
			})
		}
	}
}

// TestBSPHostFailurePropagates: a host that fails locally (not through a
// transport fault) must still take the whole run down with it — survivors
// unblock with a *comm.PeerError naming it instead of waiting forever.
func TestBSPHostFailurePropagates(t *testing.T) {
	const hosts = 4
	_, parts, source := faultParts(t, hosts)
	hub := comm.NewHub(hosts)
	defer hub.Close()
	ts := hub.Endpoints()
	// Host 2's transport refuses its very first send: an immediately
	// failing host, before any sync completes.
	ts[2] = comm.NewFaultTransport(ts[2], comm.FaultConfig{KillAfterSends: 1, KillPeer: (2 + 1) % hosts})

	err := runWithDeadline(t, 30*time.Second, parts, ts, source)
	if err == nil {
		t.Fatal("run with a failing host succeeded")
	}
	var pe *comm.PeerError
	if !errors.As(err, &pe) {
		t.Fatalf("want *comm.PeerError, got: %v", err)
	}
}

// TestBSPDelayFaultStillCorrect: injected delays are turbulence, not
// failure — the run must complete and stay bit-correct against the
// sequential reference.
func TestBSPDelayFaultStillCorrect(t *testing.T) {
	const hosts = 3
	numNodes, edges, g := testGraph(t, 8, false)
	source := g.MaxOutDegreeNode()
	want := ref.BFS(g, source)
	pol, err := partition.NewPolicy(partition.CVC, numNodes, hosts, policyOptions(numNodes, g))
	if err != nil {
		t.Fatal(err)
	}
	parts, err := partition.PartitionAll(numNodes, edges, pol)
	if err != nil {
		t.Fatal(err)
	}
	hub := comm.NewHub(hosts)
	defer hub.Close()
	ts := hub.Endpoints()
	for h := range ts {
		ts[h] = comm.NewFaultTransport(ts[h], comm.FaultConfig{
			Seed: int64(h), DelayEvery: 20, Delay: time.Millisecond, DelayJitter: time.Millisecond,
		})
	}
	res, err := dsys.RunWithTransports(parts, ts, dsys.RunConfig{
		Hosts: hosts, Policy: partition.CVC, Opt: gluon.Opt(), CollectValues: true,
	}, bfs.NewGalois(uint64(source), 2))
	if err != nil {
		t.Fatalf("delayed run failed: %v", err)
	}
	for i, w := range want {
		if float64(w) != res.Values[i] {
			t.Fatalf("node %d: got %v, want %d", i, res.Values[i], w)
		}
	}
}
