package autotune

import (
	"sync"

	"gluon/internal/gluon"
)

// CompressTuner is an adaptive per-field compression policy implementing
// gluon.CompressPolicy. Instead of the substrate's single static
// CompressThreshold, it learns — per synchronized field — whether DEFLATE
// actually pays on that field's traffic, from two observed signals:
//
//   - the compression ratio (wire bytes / raw bytes) as an EWMA over the
//     messages it shipped compressed, and
//   - the encode cost in ns/raw-byte, also an EWMA.
//
// The decision rule is probe-first: the first few messages of each field
// above MinSize are always compressed so the tuner has data. After that, a
// field keeps compressing while the observed saving fraction
// (1 − ratio EWMA) stays at or above MinSaving — and, when a Bandwidth
// model is configured, while the CPU time to compress a message is not
// larger than the wire time the removed bytes would have cost. A field
// whose traffic stops paying flips to skipping, but re-probes one message
// every ProbeEvery skipped messages so a workload whose value distribution
// shifts (e.g. labels converging, deltas shrinking) can win compression
// back.
//
// Adaptivity is per-host and observation-driven, so two hosts may make
// different ship/skip choices for the same field in the same round. That
// is safe by construction: the DEFLATE wrapper is self-describing
// (modeCompressed tag + raw length), decompression is transparent to the
// decoder, and the decoded bytes are identical either way — only wire
// volume and encode CPU vary, never the folded values.
//
// All methods are safe for concurrent use by parallel encode workers.
type CompressTuner struct {
	cfg CompressConfig

	mu     sync.Mutex
	fields map[uint32]*fieldComp
}

// CompressConfig parameterizes a CompressTuner. The zero value is usable;
// each field documents its default.
type CompressConfig struct {
	// MinSize is the payload size below which compression is never
	// attempted — the DEFLATE stream setup cost dominates tiny messages
	// regardless of ratio (0 = 256 bytes).
	MinSize int
	// ProbeWindow is how many initial messages per field are compressed
	// unconditionally to seed the EWMAs (0 = 4).
	ProbeWindow int
	// ProbeEvery is the re-probe period while a field is in the skipping
	// state: one message in every ProbeEvery is compressed to refresh the
	// EWMAs (0 = 64).
	ProbeEvery int
	// MinSaving is the minimum observed saving fraction (1 − wire/raw)
	// for a field to keep compressing (0 = 0.10, i.e. 10%).
	MinSaving float64
	// BandwidthBytesPerSec, when non-zero, enables the CPU criterion: a
	// field also stops compressing when the EWMA encode time per message
	// exceeds the wire time of the bytes compression saves at this link
	// bandwidth. Zero disables the criterion, making decisions a pure
	// function of observed ratios (deterministic across machines).
	BandwidthBytesPerSec float64
	// Alpha is the EWMA smoothing factor in (0, 1]; larger tracks shifts
	// faster (0 = 0.25).
	Alpha float64
}

func (c *CompressConfig) withDefaults() CompressConfig {
	out := *c
	if out.MinSize <= 0 {
		out.MinSize = 256
	}
	if out.ProbeWindow <= 0 {
		out.ProbeWindow = 4
	}
	if out.ProbeEvery <= 0 {
		out.ProbeEvery = 64
	}
	if out.MinSaving <= 0 {
		out.MinSaving = 0.10
	}
	if out.Alpha <= 0 || out.Alpha > 1 {
		out.Alpha = 0.25
	}
	return out
}

// fieldComp is one field's learned state. Guarded by CompressTuner.mu:
// sync encodes a handful of messages per field per round, so a single
// tuner-wide mutex is far from contention even with parallel workers.
type fieldComp struct {
	observed  int     // compressed messages folded into the EWMAs
	skipping  bool    // current decision state
	sinceSkip int     // messages declined since entering skipping
	ratio     float64 // EWMA of wireBytes/rawBytes over shipped messages
	nsPerByte float64 // EWMA of compressNs/rawBytes over shipped messages
}

// NewCompressTuner returns a tuner with the given configuration; pass it
// via gluon.Options.CompressPolicy.
func NewCompressTuner(cfg CompressConfig) *CompressTuner {
	return &CompressTuner{cfg: cfg.withDefaults(), fields: make(map[uint32]*fieldComp)}
}

func (t *CompressTuner) field(id uint32) *fieldComp {
	fc := t.fields[id]
	if fc == nil {
		fc = &fieldComp{}
		t.fields[id] = fc
	}
	return fc
}

// ShouldCompress implements gluon.CompressPolicy.
func (t *CompressTuner) ShouldCompress(fieldID uint32, size int) bool {
	if size < t.cfg.MinSize {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	fc := t.field(fieldID)
	if fc.observed < t.cfg.ProbeWindow {
		return true // still seeding the EWMAs
	}
	if !fc.skipping {
		return true
	}
	// Skipping: let one probe through every ProbeEvery declines.
	if fc.sinceSkip+1 >= t.cfg.ProbeEvery {
		fc.sinceSkip = 0
		return true
	}
	return false
}

// Observe implements gluon.CompressPolicy. Shipped observations (the
// message actually went out compressed) update the EWMAs and re-evaluate
// the field's decision; declined or failed attempts only advance the
// re-probe counter.
func (t *CompressTuner) Observe(fieldID uint32, rawBytes, wireBytes int, compressNs int64, shipped bool) {
	if rawBytes <= 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	fc := t.field(fieldID)
	if !shipped {
		if fc.skipping {
			fc.sinceSkip++
		} else if compressNs > 0 && fc.observed >= t.cfg.ProbeWindow {
			// An attempted compression that came back incompressible
			// (wire == raw, fail-open) is strong evidence: fold a ratio
			// of 1 into the EWMA so repeated failures flip the field.
			fc.ratio += t.cfg.Alpha * (1 - fc.ratio)
			t.decide(fc)
		}
		return
	}
	ratio := float64(wireBytes) / float64(rawBytes)
	nsPerByte := float64(compressNs) / float64(rawBytes)
	if fc.observed == 0 {
		fc.ratio, fc.nsPerByte = ratio, nsPerByte
	} else {
		fc.ratio += t.cfg.Alpha * (ratio - fc.ratio)
		fc.nsPerByte += t.cfg.Alpha * (nsPerByte - fc.nsPerByte)
	}
	fc.observed++
	if fc.observed >= t.cfg.ProbeWindow {
		t.decide(fc)
	}
}

// decide re-evaluates a field's ship/skip state from its EWMAs.
func (t *CompressTuner) decide(fc *fieldComp) {
	saving := 1 - fc.ratio
	worth := saving >= t.cfg.MinSaving
	if worth && t.cfg.BandwidthBytesPerSec > 0 {
		// CPU criterion: compressing a byte costs nsPerByte; shipping the
		// bytes it removes would have cost saving/bandwidth seconds per
		// raw byte. Compression loses when the CPU side is larger.
		wireNsPerByte := saving / t.cfg.BandwidthBytesPerSec * 1e9
		if fc.nsPerByte > wireNsPerByte {
			worth = false
		}
	}
	if worth {
		fc.skipping = false
	} else if !fc.skipping {
		fc.skipping = true
		fc.sinceSkip = 0
	}
}

// FieldState is one field's learned compression state, for diagnostics.
type FieldState struct {
	FieldID   uint32  `json:"field"`
	Observed  int     `json:"observed"`
	Skipping  bool    `json:"skipping"`
	Ratio     float64 `json:"ratio"`
	NsPerByte float64 `json:"ns_per_byte"`
}

// Snapshot returns the per-field learned state, sorted by field ID.
func (t *CompressTuner) Snapshot() []FieldState {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]FieldState, 0, len(t.fields))
	for id, fc := range t.fields {
		out = append(out, FieldState{
			FieldID: id, Observed: fc.observed, Skipping: fc.skipping,
			Ratio: fc.ratio, NsPerByte: fc.nsPerByte,
		})
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].FieldID > out[j].FieldID; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// The interface-satisfaction pin keeps the gluon contract honest at
// compile time.
var _ gluon.CompressPolicy = (*CompressTuner)(nil)
