// Package autotune implements the partitioning-policy auto-tuning the
// paper's §3.3 enables: because application code is independent of the
// partitioning strategy ("programmers explore a variety of partitioning
// strategies just by changing command-line flags, which permits
// auto-tuning"), the tuner can run a short probe of the actual program
// under every candidate policy and pick a winner by measured time or
// communication volume.
package autotune

import (
	"fmt"
	"sort"
	"time"

	"gluon/internal/comm"
	"gluon/internal/dsys"
	"gluon/internal/gluon"
	"gluon/internal/graph"
	"gluon/internal/partition"
)

// Criterion selects what the tuner minimizes.
type Criterion int

// Tuning criteria.
const (
	// MinTime picks the policy with the lowest probe wall time.
	MinTime Criterion = iota
	// MinVolume picks the policy with the lowest probe communication
	// volume — the right choice when the target network is slower than the
	// probe environment.
	MinVolume
)

// Config configures a tuning probe.
type Config struct {
	Hosts int
	Opt   gluon.Options
	// ProbeRounds caps each candidate run (0 = 5 rounds).
	ProbeRounds int
	// Candidates restricts the policies tried (nil = all four).
	Candidates []partition.Kind
	Criterion  Criterion
	// PolicyOptions may carry degree tables; when empty they are derived.
	PolicyOptions partition.Options
	// Net forwards a link-cost model into probe runs.
	Net comm.NetModel
}

// Probe is one candidate's measured outcome.
type Probe struct {
	Policy            partition.Kind
	Time              time.Duration
	CommBytes         uint64
	Rounds            int
	ReplicationFactor float64
}

// Pick probes the program under every candidate policy and returns the
// winner along with all probe measurements (sorted by the criterion,
// winner first).
func Pick(numNodes uint64, edges []graph.Edge, cfg Config, factory dsys.ProgramFactory) (partition.Kind, []Probe, error) {
	if cfg.Hosts < 1 {
		return "", nil, fmt.Errorf("autotune: need at least 1 host")
	}
	rounds := cfg.ProbeRounds
	if rounds <= 0 {
		rounds = 5
	}
	candidates := cfg.Candidates
	if candidates == nil {
		candidates = partition.AllKinds()
	}
	popt := cfg.PolicyOptions
	if popt.OutDegrees == nil && popt.InDegrees == nil {
		outDeg := make([]uint32, numNodes)
		inDeg := make([]uint32, numNodes)
		for _, e := range edges {
			outDeg[e.Src]++
			inDeg[e.Dst]++
		}
		popt = partition.Options{OutDegrees: outDeg, InDegrees: inDeg}
	}

	probes := make([]Probe, 0, len(candidates))
	for _, kind := range candidates {
		pol, err := partition.NewPolicy(kind, numNodes, cfg.Hosts, popt)
		if err != nil {
			return "", nil, err
		}
		parts, err := partition.PartitionAll(numNodes, edges, pol)
		if err != nil {
			return "", nil, err
		}
		res, err := dsys.RunPartitioned(parts, dsys.RunConfig{
			Hosts:     cfg.Hosts,
			Policy:    kind,
			Opt:       cfg.Opt,
			MaxRounds: rounds,
			Net:       cfg.Net,
		}, factory)
		if err != nil {
			return "", nil, fmt.Errorf("autotune: probing %s: %w", kind, err)
		}
		probes = append(probes, Probe{
			Policy:            kind,
			Time:              res.Time,
			CommBytes:         res.TotalCommBytes,
			Rounds:            res.Rounds,
			ReplicationFactor: partition.ComputeStats(parts).ReplicationFactor,
		})
	}
	sort.SliceStable(probes, func(a, b int) bool {
		if cfg.Criterion == MinVolume {
			return probes[a].CommBytes < probes[b].CommBytes
		}
		return probes[a].Time < probes[b].Time
	})
	return probes[0].Policy, probes, nil
}
