package autotune_test

import (
	"testing"

	"gluon/internal/algorithms/bfs"
	"gluon/internal/algorithms/pr"
	"gluon/internal/autotune"
	"gluon/internal/generate"
	"gluon/internal/gluon"
	"gluon/internal/graph"
	"gluon/internal/partition"
)

func input(t *testing.T, kind string) (uint64, []graph.Edge, *graph.CSR) {
	t.Helper()
	cfg := generate.Config{Kind: kind, Scale: 10, EdgeFactor: 8, Seed: 9}
	edges, err := generate.Edges(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.FromEdges(cfg.NumNodes(), edges, false)
	if err != nil {
		t.Fatal(err)
	}
	return cfg.NumNodes(), edges, g
}

func TestPickReturnsArgmin(t *testing.T) {
	numNodes, edges, g := input(t, "webcrawl")
	choice, probes, err := autotune.Pick(numNodes, edges, autotune.Config{
		Hosts:       4,
		Opt:         gluon.Opt(),
		ProbeRounds: 5,
		Criterion:   autotune.MinVolume,
	}, pr.NewGalois(1e-6, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(probes) != 4 {
		t.Fatalf("%d probes", len(probes))
	}
	if probes[0].Policy != choice {
		t.Fatalf("choice %s but first probe %s", choice, probes[0].Policy)
	}
	for i := 1; i < len(probes); i++ {
		if probes[i].CommBytes < probes[0].CommBytes {
			t.Fatalf("probe %s beats choice on volume", probes[i].Policy)
		}
	}
	for _, p := range probes {
		if p.ReplicationFactor < 1 {
			t.Fatalf("probe %s replication %f", p.Policy, p.ReplicationFactor)
		}
	}
	_ = g
}

func TestPickRestrictedCandidates(t *testing.T) {
	numNodes, edges, g := input(t, "rmat")
	source := uint64(g.MaxOutDegreeNode())
	choice, probes, err := autotune.Pick(numNodes, edges, autotune.Config{
		Hosts:      3,
		Opt:        gluon.Opt(),
		Candidates: []partition.Kind{partition.OEC, partition.IEC},
		Criterion:  autotune.MinTime,
	}, bfs.NewGalois(source, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(probes) != 2 {
		t.Fatalf("%d probes", len(probes))
	}
	if choice != partition.OEC && choice != partition.IEC {
		t.Fatalf("choice %s outside candidates", choice)
	}
}

func TestPickErrors(t *testing.T) {
	numNodes, edges, _ := input(t, "rmat")
	if _, _, err := autotune.Pick(numNodes, edges, autotune.Config{Hosts: 0},
		bfs.NewGalois(0, 1)); err == nil {
		t.Fatal("hosts=0 accepted")
	}
}
