package autotune

import (
	"testing"
)

func TestCompressTunerMinSize(t *testing.T) {
	tn := NewCompressTuner(CompressConfig{MinSize: 100})
	if tn.ShouldCompress(1, 99) {
		t.Fatal("sub-MinSize payload should never compress")
	}
	if !tn.ShouldCompress(1, 100) {
		t.Fatal("at-MinSize payload should probe-compress")
	}
}

func TestCompressTunerKeepsCompressingWhenWorthIt(t *testing.T) {
	tn := NewCompressTuner(CompressConfig{MinSize: 1, ProbeWindow: 2})
	for i := 0; i < 20; i++ {
		if !tn.ShouldCompress(7, 1000) {
			t.Fatalf("message %d: declined despite 60%% saving", i)
		}
		tn.Observe(7, 1000, 400, 5000, true) // 60% saving
	}
	st := tn.Snapshot()
	if len(st) != 1 || st[0].Skipping {
		t.Fatalf("field should be in the compressing state: %+v", st)
	}
	if st[0].Ratio < 0.35 || st[0].Ratio > 0.45 {
		t.Fatalf("ratio EWMA should settle near 0.4, got %g", st[0].Ratio)
	}
}

func TestCompressTunerSkipsIncompressibleField(t *testing.T) {
	tn := NewCompressTuner(CompressConfig{MinSize: 1, ProbeWindow: 2, ProbeEvery: 8})
	// Probe window: compression barely saves anything (2% < 10% MinSaving).
	probes := 0
	for i := 0; i < 2; i++ {
		if !tn.ShouldCompress(3, 1000) {
			t.Fatalf("probe message %d declined", i)
		}
		tn.Observe(3, 1000, 980, 5000, true)
		probes++
	}
	// The field must now be skipping.
	declined := 0
	for i := 0; i < 7; i++ {
		if tn.ShouldCompress(3, 1000) {
			t.Fatalf("message %d after bad probes: should skip", i)
		}
		tn.Observe(3, 1000, 1000, 0, false) // policy declined, shipped raw
		declined++
	}
	// The 8th skipped message is the re-probe.
	if !tn.ShouldCompress(3, 1000) {
		t.Fatal("re-probe message should compress")
	}
	st := tn.Snapshot()
	if !st[0].Skipping {
		t.Fatalf("field should be skipping: %+v", st[0])
	}
	_ = probes
	_ = declined
}

func TestCompressTunerReprobeRecovers(t *testing.T) {
	tn := NewCompressTuner(CompressConfig{MinSize: 1, ProbeWindow: 1, ProbeEvery: 4, Alpha: 1})
	// One bad probe flips the field to skipping (Alpha=1 → no smoothing).
	tn.Observe(9, 1000, 1000, 100, true)
	if tn.ShouldCompress(9, 1000) {
		t.Fatal("field should skip after an incompressible probe")
	}
	// Burn declines until the re-probe fires, then feed it a good ratio.
	fired := false
	for i := 0; i < 10; i++ {
		if tn.ShouldCompress(9, 1000) {
			fired = true
			tn.Observe(9, 1000, 200, 100, true) // 80% saving now
			break
		}
		tn.Observe(9, 1000, 1000, 0, false)
	}
	if !fired {
		t.Fatal("re-probe never fired")
	}
	if !tn.ShouldCompress(9, 1000) {
		t.Fatal("field should resume compressing after a good re-probe")
	}
}

func TestCompressTunerCPUCriterion(t *testing.T) {
	// 50% saving is well above MinSaving, but the configured link is so
	// fast that burning CPU on DEFLATE loses: at 1 GB/s, saving half a
	// byte per byte buys 0.5ns/byte of wire time, and the observed encode
	// cost is 10ns/byte.
	tn := NewCompressTuner(CompressConfig{
		MinSize: 1, ProbeWindow: 2, BandwidthBytesPerSec: 1e9,
	})
	for i := 0; i < 2; i++ {
		tn.Observe(5, 1000, 500, 10000, true) // 10ns/byte
	}
	if tn.ShouldCompress(5, 1000) {
		t.Fatal("CPU criterion should veto compression on a fast link")
	}

	// Same traffic on a slow link (1 MB/s): wire time dominates, keep
	// compressing.
	slow := NewCompressTuner(CompressConfig{
		MinSize: 1, ProbeWindow: 2, BandwidthBytesPerSec: 1e6,
	})
	for i := 0; i < 2; i++ {
		slow.Observe(5, 1000, 500, 10000, true)
	}
	if !slow.ShouldCompress(5, 1000) {
		t.Fatal("slow link should keep compressing")
	}
}

func TestCompressTunerPerFieldIndependence(t *testing.T) {
	tn := NewCompressTuner(CompressConfig{MinSize: 1, ProbeWindow: 2})
	for i := 0; i < 4; i++ {
		tn.Observe(1, 1000, 200, 1000, true) // field 1 compresses well
		tn.Observe(2, 1000, 990, 1000, true) // field 2 barely saves
	}
	if !tn.ShouldCompress(1, 1000) {
		t.Fatal("field 1 should compress")
	}
	if tn.ShouldCompress(2, 1000) {
		t.Fatal("field 2 should skip")
	}
	st := tn.Snapshot()
	if len(st) != 2 || st[0].FieldID != 1 || st[1].FieldID != 2 {
		t.Fatalf("snapshot should list both fields sorted: %+v", st)
	}
}

func TestCompressTunerConcurrentSafety(t *testing.T) {
	tn := NewCompressTuner(CompressConfig{MinSize: 1})
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				id := uint32(w % 2)
				if tn.ShouldCompress(id, 1000) {
					tn.Observe(id, 1000, 500, 1000, true)
				} else {
					tn.Observe(id, 1000, 1000, 0, false)
				}
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	tn.Snapshot()
}
