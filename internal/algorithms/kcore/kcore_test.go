package kcore_test

import (
	"fmt"
	"testing"

	"gluon/internal/algorithms/kcore"
	"gluon/internal/dsys"
	"gluon/internal/generate"
	"gluon/internal/gluon"
	"gluon/internal/graph"
	"gluon/internal/partition"
	"gluon/internal/ref"
)

// refKCore peels sequentially: returns 1 for nodes in the k-core.
func refKCore(g *graph.CSR, k uint64) []uint32 {
	n := g.NumNodes()
	deg := make([]uint64, n)
	for u := uint32(0); u < n; u++ {
		deg[u] = uint64(g.OutDegree(u))
	}
	dead := make([]bool, n)
	var queue []uint32
	for u := uint32(0); u < n; u++ {
		if deg[u] < k {
			dead[u] = true
			queue = append(queue, u)
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(u) {
			if dead[v] {
				continue
			}
			deg[v]--
			if deg[v] < k {
				dead[v] = true
				queue = append(queue, v)
			}
		}
	}
	out := make([]uint32, n)
	for u := range dead {
		if !dead[u] {
			out[u] = 1
		}
	}
	return out
}

func symInput(t *testing.T) (uint64, []graph.Edge, *graph.CSR) {
	t.Helper()
	cfg := generate.Config{Kind: "rmat", Scale: 9, EdgeFactor: 8, Seed: 91}
	edges, err := generate.Edges(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sym := ref.Symmetrize(edges)
	g, err := graph.FromEdges(cfg.NumNodes(), sym, false)
	if err != nil {
		t.Fatal(err)
	}
	return cfg.NumNodes(), sym, g
}

func TestKCoreMatrix(t *testing.T) {
	numNodes, sym, g := symInput(t)
	for _, k := range []uint64{2, 5, 20} {
		want := refKCore(g, k)
		for _, pol := range partition.AllKinds() {
			for _, mk := range []struct {
				name    string
				factory dsys.ProgramFactory
			}{
				{"galois", kcore.NewGalois(k, 2)},
				{"ligra", kcore.NewLigra(k, 2)},
				{"irgl", kcore.NewIrGL(k, 2)},
			} {
				t.Run(fmt.Sprintf("k%d/%s/%s", k, pol, mk.name), func(t *testing.T) {
					res, err := dsys.Run(numNodes, sym, dsys.RunConfig{
						Hosts: 4, Policy: pol, Opt: gluon.Opt(), CollectValues: true,
					}, mk.factory)
					if err != nil {
						t.Fatal(err)
					}
					for u, w := range want {
						if float64(w) != res.Values[u] {
							t.Fatalf("node %d: in-core=%v, want %d", u, res.Values[u], w)
						}
					}
				})
			}
		}
	}
}

func TestKCoreUnoptMatches(t *testing.T) {
	numNodes, sym, g := symInput(t)
	want := refKCore(g, 8)
	res, err := dsys.Run(numNodes, sym, dsys.RunConfig{
		Hosts: 5, Policy: partition.HVC, Opt: gluon.Unopt(), CollectValues: true,
	}, kcore.NewGalois(8, 2))
	if err != nil {
		t.Fatal(err)
	}
	for u, w := range want {
		if float64(w) != res.Values[u] {
			t.Fatalf("node %d: in-core=%v, want %d", u, res.Values[u], w)
		}
	}
}

// TestKCoreMonotone: the (k+1)-core is contained in the k-core.
func TestKCoreMonotone(t *testing.T) {
	numNodes, sym, _ := symInput(t)
	var prev []float64
	for _, k := range []uint64{2, 4, 8, 16} {
		res, err := dsys.Run(numNodes, sym, dsys.RunConfig{
			Hosts: 3, Policy: partition.CVC, Opt: gluon.Opt(), CollectValues: true,
		}, kcore.NewGalois(k, 2))
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil {
			for u := range res.Values {
				if res.Values[u] == 1 && prev[u] == 0 {
					t.Fatalf("k=%d: node %d in higher core but not lower", k, u)
				}
			}
		}
		prev = res.Values
	}
}
