// Package kcore implements distributed k-core decomposition by iterative
// peeling, one of the applications shipped with the original D-Galois
// suite. A node is in the k-core if it survives repeated removal of all
// nodes with (undirected) degree < k.
//
// The algorithm exercises a synchronization shape the four paper
// benchmarks do not: two fields with opposite flows —
//
//   - trims: when a node is peeled, each neighbor's trim counter is
//     incremented — write-at-destination, add-reduced to masters, mirrors
//     reset to 0 (no broadcast: nothing reads a remote trim);
//   - dead: only masters decide peeling (current degree = initial degree −
//     total trims); the decision broadcasts to the mirrors whose out-edges
//     will stop propagating — read-at-source, broadcast-only.
//
// Input must be symmetrized (peeling is an undirected notion), as with cc.
package kcore

import (
	"gluon/internal/bitset"
	"gluon/internal/dsys"
	"gluon/internal/engine/galois"
	"gluon/internal/engine/irgl"
	"gluon/internal/engine/ligra"
	"gluon/internal/fields"
	"gluon/internal/gluon"
	"gluon/internal/partition"
)

// Field IDs for kcore's two synchronized fields.
const (
	FieldIDTrims = 9
	FieldIDDead  = 10
)

type common struct {
	p *partition.Partition
	g *gluon.Gluon
	k uint64

	deg    []uint64       // global degree, fixed after Init
	trims  []uint64       // pending trim counts (this round's increments)
	dead   []uint32       // 0 alive, 1 peeled
	peeled *bitset.Bitset // proxies that already trimmed their neighbors

	trimsField gluon.Field[uint64]
	deadField  gluon.Field[uint32]
	degField   gluon.Field[uint64]
}

func newCommon(p *partition.Partition, g *gluon.Gluon, k uint64) *common {
	n := p.NumProxies()
	c := &common{
		p: p, g: g, k: k,
		deg:    make([]uint64, n),
		trims:  make([]uint64, n),
		dead:   make([]uint32, n),
		peeled: bitset.New(n),
	}
	c.trimsField = gluon.Field[uint64]{
		ID:     FieldIDTrims,
		Name:   "kcore-trims",
		Write:  gluon.AtDestination,
		Read:   gluon.AtDestination,
		Reduce: fields.SumU64{Vals: c.trims},
	}
	c.deadField = gluon.Field[uint32]{
		ID:        FieldIDDead,
		Name:      "kcore-dead",
		Write:     gluon.AtDestination,
		Read:      gluon.AtSource,
		Broadcast: fields.SetU32{Labels: c.dead},
	}
	c.degField = gluon.Field[uint64]{
		ID:        FieldIDTrims + 100,
		Name:      "kcore-deg",
		Write:     gluon.AtSource,
		Read:      gluon.AtDestination,
		Reduce:    fields.SumU64{Vals: c.deg},
		Broadcast: fields.SetU64{Vals: c.deg},
	}
	return c
}

// Name implements dsys.Program.
func (c *common) Name() string { return "kcore" }

// Init computes global degrees (one-time sync of local out-degrees, which
// on a symmetrized graph equal undirected degrees) and peels round zero:
// every master with degree < k dies immediately.
func (c *common) Init() (*bitset.Bitset, error) {
	for lid := uint32(0); lid < c.p.NumProxies(); lid++ {
		c.deg[lid] = uint64(c.p.Graph.OutDegree(lid))
	}
	if err := gluon.Sync(c.g, c.degField, nil); err != nil {
		return nil, err
	}
	frontier := bitset.New(c.p.NumProxies())
	for m := uint32(0); m < c.p.NumMasters; m++ {
		if c.deg[m] < c.k {
			c.dead[m] = 1
			frontier.SetUnsync(m)
		}
	}
	// Propagate the initial deaths to mirrors with out-edges, activating
	// them for the first peel round.
	if err := gluon.SyncBroadcast(c.g, c.deadField, frontier); err != nil {
		return nil, err
	}
	return frontier, nil
}

// Sync implements dsys.Program: reduce trim counts to masters, peel masters
// that fell below k, broadcast the new deaths.
func (c *common) Sync(updated *bitset.Bitset) error {
	if err := gluon.SyncReduce(c.g, c.trimsField, updated); err != nil {
		return err
	}
	updated.Reset()
	for m := uint32(0); m < c.p.NumMasters; m++ {
		if c.dead[m] != 0 || c.trims[m] == 0 {
			c.trims[m] = 0
			continue
		}
		if c.trims[m] > c.deg[m] {
			c.deg[m] = 0
		} else {
			c.deg[m] -= c.trims[m]
		}
		c.trims[m] = 0
		if c.deg[m] < c.k {
			c.dead[m] = 1
			updated.SetUnsync(m)
		}
	}
	return gluon.SyncBroadcast(c.g, c.deadField, updated)
}

// Finalize implements dsys.Program.
func (c *common) Finalize() error { return gluon.BroadcastAll(c.g, c.deadField) }

// MasterValue implements dsys.Program: 1 if the node is in the k-core.
func (c *common) MasterValue(lid uint32) float64 {
	if c.dead[lid] == 0 {
		return 1
	}
	return 0
}

// peel increments the trim counter of every neighbor of a newly dead
// proxy. Guards make peeling exactly-once per proxy: a dense-mode dead
// broadcast may redeliver old deaths (or alive zeros), and delivery
// activates the receiving mirror unconditionally.
func (c *common) peel(u uint32, updated *bitset.Bitset) {
	if c.dead[u] == 0 || !c.peeled.TestAndSet(u) {
		return
	}
	for _, d := range c.p.Graph.Neighbors(u) {
		fields.AtomicAddU64(&c.trims[d], 1)
		updated.Set(d)
	}
}

// ---------- D-Galois ----------

type galoisProgram struct {
	*common
	e *galois.Engine
}

// NewGalois builds the worklist peeling program.
func NewGalois(k uint64, workers int) dsys.ProgramFactory {
	return func(p *partition.Partition, g *gluon.Gluon) (dsys.Program, error) {
		return &galoisProgram{common: newCommon(p, g, k), e: galois.New(p.Graph, workers)}, nil
	}
}

// Round implements dsys.Program: every proxy newly marked dead trims its
// local neighbors once.
func (pr *galoisProgram) Round(frontier *bitset.Bitset) (*bitset.Bitset, error) {
	updated := bitset.New(pr.p.NumProxies())
	pr.e.DoAllFrontier(frontier, func(e *galois.Engine, u uint32, push func(uint32)) {
		pr.peel(u, updated)
	})
	return updated, nil
}

// ---------- D-IrGL ----------

type irglProgram struct {
	*common
	dev *irgl.Device
}

// NewIrGL builds the device peeling program: one masked kernel per round
// over the newly dead proxies.
func NewIrGL(k uint64, workers int) dsys.ProgramFactory {
	return func(p *partition.Partition, g *gluon.Gluon) (dsys.Program, error) {
		return &irglProgram{common: newCommon(p, g, k), dev: irgl.New(p.Graph, workers)}, nil
	}
}

// Round implements dsys.Program.
func (pr *irglProgram) Round(frontier *bitset.Bitset) (*bitset.Bitset, error) {
	updated := bitset.New(pr.p.NumProxies())
	pr.dev.KernelMasked(frontier, func(u uint32) {
		pr.peel(u, updated)
	})
	return updated, nil
}

// ---------- D-Ligra ----------

type ligraProgram struct {
	*common
	workers int
}

// NewLigra builds the frontier-based peeling program.
func NewLigra(k uint64, workers int) dsys.ProgramFactory {
	return func(p *partition.Partition, g *gluon.Gluon) (dsys.Program, error) {
		return &ligraProgram{common: newCommon(p, g, k), workers: workers}, nil
	}
}

// Round implements dsys.Program via vertexMap over the dead frontier.
func (pr *ligraProgram) Round(frontier *bitset.Bitset) (*bitset.Bitset, error) {
	updated := bitset.New(pr.p.NumProxies())
	ligra.VertexMap(frontier, pr.workers, func(u uint32) {
		pr.peel(u, updated)
	})
	return updated, nil
}
