package cc_test

// In-package validation; the exhaustive system × policy × hosts ×
// optimization matrix for this algorithm lives in internal/dsys.

import (
	"testing"

	"gluon/internal/algorithms/cc"
	"gluon/internal/dsys"
	"gluon/internal/generate"
	"gluon/internal/gluon"
	"gluon/internal/graph"
	"gluon/internal/partition"
	"gluon/internal/ref"
)

func TestAllEnginesMatchReference(t *testing.T) {
	cfg := generate.Config{Kind: "rmat", Scale: 9, EdgeFactor: 8, Seed: 101}
	raw, err := generate.Edges(cfg)
	if err != nil {
		t.Fatal(err)
	}
	edges := ref.Symmetrize(raw)
	g, err := graph.FromEdges(cfg.NumNodes(), edges, false)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.CC(g)
	factories := map[string]dsys.ProgramFactory{
		"ligra":  cc.NewLigra(2),
		"galois": cc.NewGalois(2),
		"irgl":   cc.NewIrGL(2),
	}
	for name, f := range factories {
		res, err := dsys.Run(cfg.NumNodes(), edges, dsys.RunConfig{
			Hosts: 4, Policy: partition.CVC, Opt: gluon.Opt(), CollectValues: true,
		}, f)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for u, w := range want {
			if float64(w) != res.Values[u] {
				t.Fatalf("%s node %d: %v, want %d", name, u, res.Values[u], w)
			}
		}
	}
}
