// Package cc implements distributed connected components by label
// propagation: every node starts with its own global ID as its component
// label and repeatedly adopts the minimum label of its neighbors. Labels
// are min-reduced across proxies, write-at-destination / read-at-source —
// the same synchronization shape as bfs/sssp.
//
// Label propagation assumes an undirected (symmetrized) input, which is how
// the experiment harness prepares cc workloads; the paper likewise uses
// label propagation in D-Galois ("better for low-diameter graphs", §5.4).
package cc

import (
	"fmt"

	"gluon/internal/bitset"
	"gluon/internal/dsys"
	"gluon/internal/engine/galois"
	"gluon/internal/engine/irgl"
	"gluon/internal/engine/ligra"
	"gluon/internal/fields"
	"gluon/internal/gluon"
	"gluon/internal/partition"
)

// FieldID namespaces cc's component field in Gluon's tag space.
const FieldID = 2

type common struct {
	p     *partition.Partition
	g     *gluon.Gluon
	comp  []uint32
	field gluon.Field[uint32]
}

func newCommon(p *partition.Partition, g *gluon.Gluon) (*common, error) {
	if p.GlobalNodes > 1<<32-1 {
		return nil, fmt.Errorf("cc: global IDs exceed 32-bit labels")
	}
	c := &common{p: p, g: g}
	c.comp = make([]uint32, p.NumProxies())
	c.field = gluon.Field[uint32]{
		ID:        FieldID,
		Name:      "cc-comp",
		Write:     gluon.AtDestination,
		Read:      gluon.AtSource,
		Reduce:    fields.MinU32{Labels: c.comp},
		Broadcast: fields.SetU32{Labels: c.comp},
	}
	return c, nil
}

// Name implements dsys.Program.
func (c *common) Name() string { return "cc" }

// Init gives every proxy its node's global ID as the initial label —
// consistent across hosts with no communication — and activates everything.
func (c *common) Init() (*bitset.Bitset, error) {
	for lid := range c.comp {
		c.comp[lid] = uint32(c.p.GID(uint32(lid)))
	}
	frontier := bitset.New(c.p.NumProxies())
	frontier.SetAll()
	return frontier, nil
}

// Sync implements dsys.Program.
func (c *common) Sync(updated *bitset.Bitset) error {
	return gluon.Sync(c.g, c.field, updated)
}

// Finalize implements dsys.Program.
func (c *common) Finalize() error { return gluon.BroadcastAll(c.g, c.field) }

// MasterValue implements dsys.Program.
func (c *common) MasterValue(lid uint32) float64 { return float64(c.comp[lid]) }

// ---------- D-Ligra ----------

type ligraProgram struct {
	*common
	lg      *ligra.Graph
	workers int
}

// NewLigra builds the level-synchronous label-propagation program.
func NewLigra(workers int) dsys.ProgramFactory {
	return func(p *partition.Partition, g *gluon.Gluon) (dsys.Program, error) {
		c, err := newCommon(p, g)
		if err != nil {
			return nil, err
		}
		return &ligraProgram{common: c, lg: ligra.NewGraph(p.Graph, true), workers: workers}, nil
	}
}

// Round implements dsys.Program.
func (pr *ligraProgram) Round(frontier *bitset.Bitset) (*bitset.Bitset, error) {
	comp := pr.comp
	next := ligra.EdgeMap(pr.lg, frontier, ligra.EdgeMapConfig{
		Workers: pr.workers,
		Push: func(s, d, w uint32) bool {
			return fields.AtomicMinU32(&comp[d], fields.AtomicLoadU32(&comp[s]))
		},
		Pull: func(d, s, w uint32) bool {
			// d has a single writer per pass, but s may be another
			// worker's d in the same pass; labels are monotone, so any
			// atomically-read value is a valid label.
			cs := fields.AtomicLoadU32(&comp[s])
			if cs < comp[d] {
				fields.AtomicStoreU32(&comp[d], cs)
				return true
			}
			return false
		},
	})
	return next, nil
}

// ---------- D-Galois ----------

type galoisProgram struct {
	*common
	e *galois.Engine
}

// NewGalois builds the asynchronous label-propagation program.
func NewGalois(workers int) dsys.ProgramFactory {
	return func(p *partition.Partition, g *gluon.Gluon) (dsys.Program, error) {
		c, err := newCommon(p, g)
		if err != nil {
			return nil, err
		}
		return &galoisProgram{common: c, e: galois.New(p.Graph, workers)}, nil
	}
}

// Round implements dsys.Program. A scheduled-bit set suppresses duplicate
// worklist entries: a node whose label keeps dropping is re-examined once,
// not once per drop (Galois' standard dedup discipline).
func (pr *galoisProgram) Round(frontier *bitset.Bitset) (*bitset.Bitset, error) {
	comp := pr.comp
	n := pr.p.NumProxies()
	updated := bitset.New(n)
	inWL := frontier.Clone()
	pr.e.DoAllFrontier(frontier, func(e *galois.Engine, u uint32, push func(uint32)) {
		inWL.Clear(u)
		cu := fields.AtomicLoadU32(&comp[u])
		for _, d := range e.Graph.Neighbors(u) {
			if fields.AtomicMinU32(&comp[d], cu) {
				updated.Set(d)
				if inWL.TestAndSet(d) {
					push(d)
				}
			}
		}
	})
	return updated, nil
}

// ---------- D-IrGL ----------

type irglProgram struct {
	*common
	dev  *irgl.Device
	dbuf *irgl.Buffer[uint32]
}

// NewIrGL builds the bulk-synchronous device program.
func NewIrGL(workers int) dsys.ProgramFactory {
	return func(p *partition.Partition, g *gluon.Gluon) (dsys.Program, error) {
		c, err := newCommon(p, g)
		if err != nil {
			return nil, err
		}
		dev := irgl.New(p.Graph, workers)
		prog := &irglProgram{common: c, dev: dev}
		prog.dbuf = irgl.NewBuffer[uint32](dev, p.NumProxies())
		prog.comp = prog.dbuf.Data()
		prog.field.Reduce = irgl.MinU32Buf{B: prog.dbuf}
		prog.field.Broadcast = irgl.SetU32Buf{B: prog.dbuf}
		return prog, nil
	}
}

// Round implements dsys.Program.
func (pr *irglProgram) Round(frontier *bitset.Bitset) (*bitset.Bitset, error) {
	comp := pr.dbuf.Data()
	updated := bitset.New(pr.p.NumProxies())
	csr := pr.dev.Graph
	pr.dev.KernelMasked(frontier, func(u uint32) {
		cu := fields.AtomicLoadU32(&comp[u])
		for _, d := range csr.Neighbors(u) {
			if fields.AtomicMinU32(&comp[d], cu) {
				updated.Set(d)
			}
		}
	})
	return updated, nil
}
