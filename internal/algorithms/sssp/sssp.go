// Package sssp implements distributed single-source shortest paths as a
// push-style data-driven vertex program (the paper's relaxation operator:
// set l(w) to min(l(w), l(v) + weight(v,w))). The distance field is
// min-reduced across proxies, write-at-destination / read-at-source.
//
// The D-Galois variant performs chaotic relaxation within each host (the
// paper's §5.4: "propagates such updates in the same round within the same
// host, like chaotic relaxation in sssp").
package sssp

import (
	"fmt"

	"gluon/internal/bitset"
	"gluon/internal/ckpt"
	"gluon/internal/dsys"
	"gluon/internal/engine/galois"
	"gluon/internal/engine/irgl"
	"gluon/internal/engine/ligra"
	"gluon/internal/fields"
	"gluon/internal/gluon"
	"gluon/internal/partition"
)

// FieldID namespaces sssp's dist field in Gluon's tag space.
const FieldID = 3

// Infinity marks unreached nodes.
const Infinity = fields.InfinityU32

type common struct {
	p      *partition.Partition
	g      *gluon.Gluon
	dist   []uint32
	source uint64
	field  gluon.Field[uint32]
}

func newCommon(p *partition.Partition, g *gluon.Gluon, source uint64) (*common, error) {
	if !p.Graph.HasWeights {
		return nil, fmt.Errorf("sssp: partition graph has no edge weights")
	}
	c := &common{p: p, g: g, source: source}
	c.dist = make([]uint32, p.NumProxies())
	c.field = gluon.Field[uint32]{
		ID:        FieldID,
		Name:      "sssp-dist",
		Write:     gluon.AtDestination,
		Read:      gluon.AtSource,
		Reduce:    fields.MinU32{Labels: c.dist},
		Broadcast: fields.SetU32{Labels: c.dist},
	}
	return c, nil
}

// Name implements dsys.Program.
func (c *common) Name() string { return "sssp" }

// secDist names the checkpoint section holding the distance labels.
const secDist = "sssp-dist"

// ExportState implements dsys.Checkpointable. The distance field is the
// program's entire round-boundary state (worklists are rebuilt from the
// runner's checkpointed frontier).
func (c *common) ExportState() ([]ckpt.Section, error) {
	return []ckpt.Section{{Name: secDist, Data: fields.EncodeU32s(nil, c.dist)}}, nil
}

// ImportState implements dsys.Checkpointable, decoding in place so the
// IrGL variant's device buffer (which c.dist aliases) sees the restored
// labels.
func (c *common) ImportState(secs []ckpt.Section) error {
	snap := ckpt.Snapshot{Sections: secs}
	data := snap.Section(secDist)
	if data == nil {
		return fmt.Errorf("sssp: checkpoint has no %s section", secDist)
	}
	if err := fields.DecodeU32s(data, c.dist); err != nil {
		return fmt.Errorf("sssp: restore %s: %w", secDist, err)
	}
	return nil
}

// Init implements dsys.Program.
func (c *common) Init() (*bitset.Bitset, error) {
	for i := range c.dist {
		c.dist[i] = Infinity
	}
	frontier := bitset.New(c.p.NumProxies())
	if lid, ok := c.p.LID(c.source); ok {
		c.dist[lid] = 0
		frontier.SetUnsync(lid)
	}
	return frontier, nil
}

// Sync implements dsys.Program.
func (c *common) Sync(updated *bitset.Bitset) error {
	return gluon.Sync(c.g, c.field, updated)
}

// Finalize implements dsys.Program.
func (c *common) Finalize() error { return gluon.BroadcastAll(c.g, c.field) }

// MasterValue implements dsys.Program.
func (c *common) MasterValue(lid uint32) float64 { return float64(c.dist[lid]) }

// relax lowers dist[d] to dist[u]+w, saturating instead of overflowing.
func relax(dist []uint32, du, w uint32, d uint32) bool {
	nd := du + w
	if nd < du { // overflow
		nd = Infinity - 1
	}
	return fields.AtomicMinU32(&dist[d], nd)
}

// ---------- D-Ligra ----------

type ligraProgram struct {
	*common
	lg      *ligra.Graph
	workers int
}

// NewLigra builds the level-synchronous Bellman-Ford-style Ligra program.
func NewLigra(source uint64, workers int) dsys.ProgramFactory {
	return func(p *partition.Partition, g *gluon.Gluon) (dsys.Program, error) {
		c, err := newCommon(p, g, source)
		if err != nil {
			return nil, err
		}
		return &ligraProgram{common: c, lg: ligra.NewGraph(p.Graph, false), workers: workers}, nil
	}
}

// Round implements dsys.Program.
func (pr *ligraProgram) Round(frontier *bitset.Bitset) (*bitset.Bitset, error) {
	dist := pr.dist
	next := ligra.EdgeMap(pr.lg, frontier, ligra.EdgeMapConfig{
		Workers: pr.workers,
		Push: func(s, d, w uint32) bool {
			du := fields.AtomicLoadU32(&dist[s])
			if du == Infinity {
				return false
			}
			return relax(dist, du, w, d)
		},
	})
	return next, nil
}

// ---------- D-Galois ----------

type galoisProgram struct {
	*common
	e *galois.Engine
}

// NewGalois builds the asynchronous chaotic-relaxation program.
func NewGalois(source uint64, workers int) dsys.ProgramFactory {
	return func(p *partition.Partition, g *gluon.Gluon) (dsys.Program, error) {
		c, err := newCommon(p, g, source)
		if err != nil {
			return nil, err
		}
		return &galoisProgram{common: c, e: galois.New(p.Graph, workers)}, nil
	}
}

// Round implements dsys.Program: chaotic relaxation with duplicate
// scheduling suppressed by a scheduled-bit set.
func (pr *galoisProgram) Round(frontier *bitset.Bitset) (*bitset.Bitset, error) {
	dist := pr.dist
	updated := bitset.New(pr.p.NumProxies())
	inWL := frontier.Clone()
	pr.e.DoAllFrontier(frontier, func(e *galois.Engine, u uint32, push func(uint32)) {
		inWL.Clear(u)
		du := fields.AtomicLoadU32(&dist[u])
		if du == Infinity {
			return
		}
		nbrs := e.Graph.Neighbors(u)
		ws := e.Graph.EdgeWeights(u)
		for i, d := range nbrs {
			if relax(dist, du, ws[i], d) {
				updated.Set(d)
				if inWL.TestAndSet(d) {
					push(d)
				}
			}
		}
	})
	return updated, nil
}

// ---------- D-IrGL ----------

type irglProgram struct {
	*common
	dev  *irgl.Device
	dbuf *irgl.Buffer[uint32]
}

// NewIrGL builds the bulk-synchronous device program.
func NewIrGL(source uint64, workers int) dsys.ProgramFactory {
	return func(p *partition.Partition, g *gluon.Gluon) (dsys.Program, error) {
		c, err := newCommon(p, g, source)
		if err != nil {
			return nil, err
		}
		dev := irgl.New(p.Graph, workers)
		prog := &irglProgram{common: c, dev: dev}
		prog.dbuf = irgl.NewBuffer[uint32](dev, p.NumProxies())
		prog.dist = prog.dbuf.Data()
		prog.field.Reduce = irgl.MinU32Buf{B: prog.dbuf}
		prog.field.Broadcast = irgl.SetU32Buf{B: prog.dbuf}
		return prog, nil
	}
}

// Round implements dsys.Program.
func (pr *irglProgram) Round(frontier *bitset.Bitset) (*bitset.Bitset, error) {
	dist := pr.dbuf.Data()
	updated := bitset.New(pr.p.NumProxies())
	csr := pr.dev.Graph
	pr.dev.KernelMasked(frontier, func(u uint32) {
		du := fields.AtomicLoadU32(&dist[u])
		if du == Infinity {
			return
		}
		nbrs := csr.Neighbors(u)
		ws := csr.EdgeWeights(u)
		for i, d := range nbrs {
			if relax(dist, du, ws[i], d) {
				updated.Set(d)
			}
		}
	})
	return updated, nil
}
