package sssp

// Delta-stepping variant of the D-Galois sssp program: within each BSP
// round, the host drains its work in ascending distance buckets
// (bucket = dist/Δ) instead of FIFO order, the priority scheduling Galois'
// ordered worklists provide. Fewer label corrections happen because short
// paths settle before long ones — same converged distances, less wasted
// work on weighted graphs.

import (
	"gluon/internal/bitset"
	"gluon/internal/dsys"
	"gluon/internal/fields"
	"gluon/internal/gluon"
	"gluon/internal/partition"
	"gluon/internal/worklist"
)

// DefaultDelta is the bucket width when the caller passes 0: works well
// for the generator's weight range [1, 100].
const DefaultDelta = 16

type deltaProgram struct {
	*common
	delta   uint32
	workers int
}

// NewGaloisDelta builds the delta-stepping program. delta is the bucket
// width in distance units (0 = DefaultDelta).
func NewGaloisDelta(source uint64, delta uint32, workers int) dsys.ProgramFactory {
	return func(p *partition.Partition, g *gluon.Gluon) (dsys.Program, error) {
		c, err := newCommon(p, g, source)
		if err != nil {
			return nil, err
		}
		// Don't write the captured delta: the factory runs concurrently on
		// every host.
		d := delta
		if d == 0 {
			d = DefaultDelta
		}
		return &deltaProgram{common: c, delta: d, workers: workers}, nil
	}
}

// Name implements dsys.Program.
func (pr *deltaProgram) Name() string { return "sssp-delta" }

// Round implements dsys.Program: bucketed chaotic relaxation until local
// quiescence.
func (pr *deltaProgram) Round(frontier *bitset.Bitset) (*bitset.Bitset, error) {
	dist := pr.dist
	n := pr.p.NumProxies()
	updated := bitset.New(n)
	inWL := frontier.Clone()
	g := pr.p.Graph

	items := frontier.AppendIndices(nil)
	prios := make([]int, len(items))
	for i, u := range items {
		prios[i] = pr.bucket(fields.AtomicLoadU32(&dist[u]))
	}
	ex := &worklist.PriorityExecutor{Workers: pr.workers}
	ex.Run(items, prios, func(u uint32, push func(uint32, int)) {
		inWL.Clear(u)
		du := fields.AtomicLoadU32(&dist[u])
		if du == Infinity {
			return
		}
		nbrs := g.Neighbors(u)
		ws := g.EdgeWeights(u)
		for i, d := range nbrs {
			if relax(dist, du, ws[i], d) {
				updated.Set(d)
				if inWL.TestAndSet(d) {
					push(d, pr.bucket(fields.AtomicLoadU32(&dist[d])))
				}
			}
		}
	})
	return updated, nil
}

// bucket maps a distance to its delta-stepping bucket.
func (pr *deltaProgram) bucket(d uint32) int {
	if d == Infinity {
		return 1 << 20 // clamped to the executor's final bucket
	}
	return int(d / pr.delta)
}

// Applied returns the relaxation count of the last round (testing hook) —
// not tracked for the plain variant; delta-stepping's benefit is measured
// in bench comparisons instead.
