package sssp_test

// In-package validation; the exhaustive system × policy × hosts ×
// optimization matrix for this algorithm lives in internal/dsys.

import (
	"testing"

	"gluon/internal/algorithms/sssp"
	"gluon/internal/dsys"
	"gluon/internal/generate"
	"gluon/internal/gluon"
	"gluon/internal/graph"
	"gluon/internal/partition"
	"gluon/internal/ref"
)

func TestAllEnginesMatchReference(t *testing.T) {
	const weighted = "sssp" == "sssp"
	cfg := generate.Config{Kind: "rmat", Scale: 9, EdgeFactor: 8, Seed: 101, Weighted: weighted}
	edges, err := generate.Edges(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.FromEdges(cfg.NumNodes(), edges, weighted)
	if err != nil {
		t.Fatal(err)
	}
	source := g.MaxOutDegreeNode()
	var want []uint32
	if weighted {
		want = ref.SSSP(g, source)
	} else {
		want = ref.BFS(g, source)
	}
	factories := map[string]dsys.ProgramFactory{
		"ligra":  sssp.NewLigra(uint64(source), 2),
		"galois": sssp.NewGalois(uint64(source), 2),
		"irgl":   sssp.NewIrGL(uint64(source), 2),
	}
	for name, f := range factories {
		res, err := dsys.Run(cfg.NumNodes(), edges, dsys.RunConfig{
			Hosts: 4, Policy: partition.CVC, Opt: gluon.Opt(), CollectValues: true,
		}, f)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for u, w := range want {
			if float64(w) != res.Values[u] {
				t.Fatalf("%s node %d: %v, want %d", name, u, res.Values[u], w)
			}
		}
	}
}
