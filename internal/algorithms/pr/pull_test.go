package pr_test

import (
	"fmt"
	"math"
	"testing"

	"gluon/internal/algorithms/pr"
	"gluon/internal/dsys"
	"gluon/internal/generate"
	"gluon/internal/gluon"
	"gluon/internal/graph"
	"gluon/internal/partition"
	"gluon/internal/ref"
)

func pullInput(t *testing.T) (uint64, []graph.Edge, []float64) {
	t.Helper()
	cfg := generate.Config{Kind: "rmat", Scale: 9, EdgeFactor: 8, Seed: 61}
	edges, err := generate.Edges(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.FromEdges(cfg.NumNodes(), edges, false)
	if err != nil {
		t.Fatal(err)
	}
	return cfg.NumNodes(), edges, ref.PageRank(g, pr.Alpha, 1e-9, 100)
}

// TestPullEnginesAgree: the three engine implementations of pull pagerank
// produce identical rank vectors (same synchronous recurrence, same sync).
func TestPullEnginesAgree(t *testing.T) {
	numNodes, edges, want := pullInput(t)
	factories := map[string]dsys.ProgramFactory{
		"ligra":  pr.NewLigra(1e-9, 2),
		"galois": pr.NewGalois(1e-9, 2),
		"irgl":   pr.NewIrGL(1e-9, 2),
	}
	results := map[string][]float64{}
	for name, f := range factories {
		t.Run(name, func(t *testing.T) {
			res, err := dsys.Run(numNodes, edges, dsys.RunConfig{
				Hosts: 3, Policy: partition.IEC, Opt: gluon.Opt(),
				CollectValues: true, MaxRounds: 100,
			}, f)
			if err != nil {
				t.Fatal(err)
			}
			results[name] = res.Values
			for i, w := range want {
				if math.Abs(res.Values[i]-w) > 1e-6 {
					t.Fatalf("node %d: %g, want %g", i, res.Values[i], w)
				}
			}
		})
	}
}

// TestPullRespectsMaxRounds: the round cap bounds runaway iteration.
func TestPullRespectsMaxRounds(t *testing.T) {
	numNodes, edges, _ := pullInput(t)
	res, err := dsys.Run(numNodes, edges, dsys.RunConfig{
		Hosts: 2, Policy: partition.OEC, Opt: gluon.Opt(), MaxRounds: 3,
	}, pr.NewGalois(1e-30, 2)) // tolerance unreachably tight
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds > 3 {
		t.Fatalf("ran %d rounds past the cap", res.Rounds)
	}
}

// TestPullDanglingNodes: nodes with no in-edges keep the teleport mass;
// out-degree sync handles nodes whose edges are scattered across hosts.
func TestPullDanglingNodes(t *testing.T) {
	// star: node 0 → everyone. Node 0 has no in-edges.
	cfg := generate.Config{Kind: "star", Scale: 6, EdgeFactor: 1}
	edges, err := generate.Edges(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range partition.AllKinds() {
		t.Run(fmt.Sprint(pol), func(t *testing.T) {
			res, err := dsys.Run(cfg.NumNodes(), edges, dsys.RunConfig{
				Hosts: 4, Policy: pol, Opt: gluon.Opt(),
				CollectValues: true, MaxRounds: 50,
			}, pr.NewLigra(1e-9, 2))
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(res.Values[0]-0.15) > 1e-9 {
				t.Fatalf("hub rank %g, want teleport mass 0.15", res.Values[0])
			}
			// Every leaf gets 0.15 + 0.85·(0.15/63).
			wantLeaf := 0.15 + 0.85*0.15/63
			if math.Abs(res.Values[1]-wantLeaf) > 1e-9 {
				t.Fatalf("leaf rank %g, want %g", res.Values[1], wantLeaf)
			}
		})
	}
}
