// Package pr implements distributed PageRank as a pull-style vertex
// program (the paper's choice for D-Galois and D-IrGL): each round, every
// node gathers rank/out-degree contributions over its incoming edges.
//
// Three Gluon fields demonstrate the substrate's field-sensitivity (§3.3):
//
//   - outdeg (one-time, at Init): each proxy's local out-degree is
//     sum-reduced to the master and broadcast back, yielding global
//     out-degrees — written and read at edge sources.
//   - contrib (each round): partial dangling sums are add-reduced from
//     mirrors to masters — write at destination, no broadcast.
//   - rank (each round): the new rank is broadcast from masters to the
//     mirrors that will be read as edge sources — read at source, no reduce.
//
// Ranks use the standard damped recurrence rank(v) = (1-α) + α·Σ
// rank(u)/outdeg(u); iteration stops when no master moves more than the
// tolerance, or at the round cap the harness sets (the paper uses 100).
package pr

import (
	"fmt"
	"math"

	"gluon/internal/bitset"
	"gluon/internal/ckpt"
	"gluon/internal/dsys"
	"gluon/internal/engine/galois"
	"gluon/internal/engine/irgl"
	"gluon/internal/engine/ligra"
	"gluon/internal/fields"
	"gluon/internal/gluon"
	"gluon/internal/graph"
	"gluon/internal/par"
	"gluon/internal/partition"
)

// Field IDs for pr's three synchronized fields.
const (
	FieldIDContrib = 4
	FieldIDRank    = 5
	FieldIDOutDeg  = 6
)

// Alpha is the damping factor.
const Alpha = 0.85

// DefaultTolerance matches the paper's setting for large inputs.
const DefaultTolerance = 1e-6

type common struct {
	p   *partition.Partition
	g   *gluon.Gluon
	tol float64

	rank    []float64
	contrib []float64
	outdeg  []uint64

	contribField gluon.Field[float64]
	rankField    gluon.Field[float64]
	outdegField  gluon.Field[uint64]
}

func newCommon(p *partition.Partition, g *gluon.Gluon, tol float64) *common {
	if tol <= 0 {
		tol = DefaultTolerance
	}
	n := p.NumProxies()
	c := &common{
		p: p, g: g, tol: tol,
		rank:    make([]float64, n),
		contrib: make([]float64, n),
		outdeg:  make([]uint64, n),
	}
	c.contribField = gluon.Field[float64]{
		ID:     FieldIDContrib,
		Name:   "pr-contrib",
		Write:  gluon.AtDestination,
		Read:   gluon.AtDestination,
		Reduce: fields.SumF64{Vals: c.contrib},
	}
	c.rankField = gluon.Field[float64]{
		ID:        FieldIDRank,
		Name:      "pr-rank",
		Write:     gluon.AtDestination,
		Read:      gluon.AtSource,
		Broadcast: fields.SetF64{Vals: c.rank},
	}
	c.outdegField = gluon.Field[uint64]{
		ID:        FieldIDOutDeg,
		Name:      "pr-outdeg",
		Write:     gluon.AtSource,
		Read:      gluon.AtSource,
		Reduce:    fields.SumU64{Vals: c.outdeg},
		Broadcast: fields.SetU64{Vals: c.outdeg},
	}
	return c
}

// Name implements dsys.Program.
func (c *common) Name() string { return "pr" }

// Checkpoint section names for the three synchronized fields.
const (
	secRank    = "pr-rank"
	secContrib = "pr-contrib"
	secOutdeg  = "pr-outdeg"
)

// ExportState implements dsys.Checkpointable: copies of the three field
// arrays, so the checkpoint writer can drain them while rounds continue.
func (c *common) ExportState() ([]ckpt.Section, error) {
	return []ckpt.Section{
		{Name: secRank, Data: fields.EncodeF64s(nil, c.rank)},
		{Name: secContrib, Data: fields.EncodeF64s(nil, c.contrib)},
		{Name: secOutdeg, Data: fields.EncodeU64s(nil, c.outdeg)},
	}, nil
}

// ImportState implements dsys.Checkpointable. Decoding is in place — into
// the same arrays the gluon.Field accessors (and the IrGL device buffers)
// alias — so every engine variant observes the restored values.
func (c *common) ImportState(secs []ckpt.Section) error {
	snap := &ckpt.Snapshot{Sections: secs}
	for _, s := range []struct {
		name string
		dec  func([]byte) error
	}{
		{secRank, func(b []byte) error { return fields.DecodeF64s(b, c.rank) }},
		{secContrib, func(b []byte) error { return fields.DecodeF64s(b, c.contrib) }},
		{secOutdeg, func(b []byte) error { return fields.DecodeU64s(b, c.outdeg) }},
	} {
		data := snap.Section(s.name)
		if data == nil {
			return fmt.Errorf("pr: checkpoint has no %s section", s.name)
		}
		if err := s.dec(data); err != nil {
			return fmt.Errorf("pr: checkpoint section %s: %w", s.name, err)
		}
	}
	return nil
}

// Init computes global out-degrees with a one-time field sync and seeds
// every proxy's rank with the teleport mass.
func (c *common) Init() (*bitset.Bitset, error) {
	for lid := uint32(0); lid < c.p.NumProxies(); lid++ {
		c.outdeg[lid] = uint64(c.p.Graph.OutDegree(lid))
		c.rank[lid] = 1 - Alpha
		c.contrib[lid] = 0
	}
	if err := gluon.Sync(c.g, c.outdegField, nil); err != nil {
		return nil, err
	}
	frontier := bitset.New(c.p.NumProxies())
	frontier.SetAll()
	return frontier, nil
}

// Sync implements dsys.Program: reduce contributions, apply the PageRank
// update on masters, broadcast new ranks.
func (c *common) Sync(updated *bitset.Bitset) error {
	if err := gluon.SyncReduce(c.g, c.contribField, updated); err != nil {
		return err
	}
	// Apply on masters; track which ranks moved beyond tolerance.
	updated.Reset()
	for m := uint32(0); m < c.p.NumMasters; m++ {
		newRank := (1 - Alpha) + Alpha*c.contrib[m]
		delta := math.Abs(newRank - c.rank[m])
		c.rank[m] = newRank
		c.contrib[m] = 0
		if delta > c.tol {
			updated.SetUnsync(m)
		}
	}
	return gluon.SyncBroadcast(c.g, c.rankField, updated)
}

// Finalize implements dsys.Program.
func (c *common) Finalize() error { return gluon.BroadcastAll(c.g, c.rankField) }

// MasterValue implements dsys.Program.
func (c *common) MasterValue(lid uint32) float64 { return c.rank[lid] }

// gather recomputes contrib over the in-graph rows [lo, hi), marking
// nonzero rows in updated. Single writer per destination: no atomics.
func (c *common) gather(in *graph.CSR, lo, hi uint32, updated *bitset.Bitset) {
	for v := lo; v < hi; v++ {
		var sum float64
		for _, u := range in.Neighbors(v) {
			sum += c.rank[u] / float64(c.outdeg[u])
		}
		c.contrib[v] = sum
		if sum != 0 {
			updated.Set(v)
		}
	}
}

// ---------- D-Ligra ----------

type ligraProgram struct {
	*common
	lg      *ligra.Graph
	workers int
}

// NewLigra builds the pull PageRank program over the Ligra engine's dense
// (in-edge) traversal.
func NewLigra(tol float64, workers int) dsys.ProgramFactory {
	return func(p *partition.Partition, g *gluon.Gluon) (dsys.Program, error) {
		return &ligraProgram{
			common:  newCommon(p, g, tol),
			lg:      ligra.NewGraph(p.Graph, true),
			workers: workers,
		}, nil
	}
}

// Round implements dsys.Program.
func (pr *ligraProgram) Round(_ *bitset.Bitset) (*bitset.Bitset, error) {
	updated := bitset.New(pr.p.NumProxies())
	n := int(pr.p.NumProxies())
	par.Range(n, pr.workers, func(lo, hi int) {
		pr.gather(pr.lg.In, uint32(lo), uint32(hi), updated)
	})
	return updated, nil
}

// ---------- D-Galois ----------

type galoisProgram struct {
	*common
	e  *galois.Engine
	in *graph.CSR
}

// NewGalois builds the pull PageRank program over the Galois engine's
// topology-driven do_all.
func NewGalois(tol float64, workers int) dsys.ProgramFactory {
	return func(p *partition.Partition, g *gluon.Gluon) (dsys.Program, error) {
		return &galoisProgram{
			common: newCommon(p, g, tol),
			e:      galois.New(p.Graph, workers),
			in:     p.InGraph(),
		}, nil
	}
}

// Round implements dsys.Program.
func (pr *galoisProgram) Round(_ *bitset.Bitset) (*bitset.Bitset, error) {
	updated := bitset.New(pr.p.NumProxies())
	n := int(pr.p.NumProxies())
	par.Range(n, pr.e.Workers, func(lo, hi int) {
		pr.gather(pr.in, uint32(lo), uint32(hi), updated)
	})
	return updated, nil
}

// ---------- D-IrGL ----------

type irglProgram struct {
	*common
	dev *irgl.Device
	in  *graph.CSR

	rankBuf    *irgl.Buffer[float64]
	contribBuf *irgl.Buffer[float64]
}

// NewIrGL builds the pull PageRank program over the device engine; rank and
// contrib live in device buffers.
func NewIrGL(tol float64, workers int) dsys.ProgramFactory {
	return func(p *partition.Partition, g *gluon.Gluon) (dsys.Program, error) {
		c := newCommon(p, g, tol)
		dev := irgl.New(p.Graph, workers)
		prog := &irglProgram{common: c, dev: dev, in: p.InGraph()}
		prog.rankBuf = irgl.NewBuffer[float64](dev, p.NumProxies())
		prog.contribBuf = irgl.NewBuffer[float64](dev, p.NumProxies())
		prog.rank = prog.rankBuf.Data()
		prog.contrib = prog.contribBuf.Data()
		prog.contribField.Reduce = irgl.SumF64Buf{B: prog.contribBuf}
		prog.rankField.Broadcast = irgl.SetF64Buf{B: prog.rankBuf}
		return prog, nil
	}
}

// Round implements dsys.Program: one topology-driven gather kernel.
func (pr *irglProgram) Round(_ *bitset.Bitset) (*bitset.Bitset, error) {
	updated := bitset.New(pr.p.NumProxies())
	in := pr.in
	pr.dev.Kernel(func(v uint32) {
		var sum float64
		for _, u := range in.Neighbors(v) {
			sum += pr.rank[u] / float64(pr.outdeg[u])
		}
		pr.contrib[v] = sum
		if sum != 0 {
			updated.Set(v)
		}
	})
	return updated, nil
}
