package pr_test

import (
	"fmt"
	"math"
	"testing"

	"gluon/internal/algorithms/pr"
	"gluon/internal/dsys"
	"gluon/internal/generate"
	"gluon/internal/gluon"
	"gluon/internal/graph"
	"gluon/internal/partition"
	"gluon/internal/ref"
)

// TestPushMatchesPullReference: the push-style (residual) variant converges
// to the same ranks as the sequential pull power iteration, across hosts
// and policies.
func TestPushMatchesPullReference(t *testing.T) {
	cfg := generate.Config{Kind: "rmat", Scale: 9, EdgeFactor: 8, Seed: 66}
	edges, err := generate.Edges(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.FromEdges(cfg.NumNodes(), edges, false)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.PageRank(g, pr.Alpha, 1e-12, 500)

	for _, pol := range partition.AllKinds() {
		for _, hosts := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/h%d", pol, hosts), func(t *testing.T) {
				res, err := dsys.Run(cfg.NumNodes(), edges, dsys.RunConfig{
					Hosts: hosts, Policy: pol, Opt: gluon.Opt(),
					CollectValues: true, MaxRounds: 500,
				}, pr.NewGaloisPush(1e-10, 2))
				if err != nil {
					t.Fatal(err)
				}
				if res.Rounds >= 500 {
					t.Fatalf("did not converge in %d rounds", res.Rounds)
				}
				var maxErr float64
				for i, w := range want {
					if e := math.Abs(res.Values[i] - w); e > maxErr {
						maxErr = e
					}
				}
				if maxErr > 1e-5 {
					t.Fatalf("max rank error %g", maxErr)
				}
			})
		}
	}
}

// TestPushMassConservation: total rank mass of push pr equals the pull
// formulation's on the same graph (teleport mass plus propagated mass,
// minus what dangling nodes absorb identically in both).
func TestPushMassConservation(t *testing.T) {
	cfg := generate.Config{Kind: "webcrawl", Scale: 9, EdgeFactor: 8, Seed: 67}
	edges, err := generate.Edges(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.FromEdges(cfg.NumNodes(), edges, false)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.PageRank(g, pr.Alpha, 1e-12, 500)
	var wantMass float64
	for _, r := range want {
		wantMass += r
	}
	res, err := dsys.Run(cfg.NumNodes(), edges, dsys.RunConfig{
		Hosts: 3, Policy: partition.CVC, Opt: gluon.Opt(),
		CollectValues: true, MaxRounds: 500,
	}, pr.NewGaloisPush(1e-10, 2))
	if err != nil {
		t.Fatal(err)
	}
	var gotMass float64
	for _, r := range res.Values {
		gotMass += r
	}
	if math.Abs(gotMass-wantMass) > 1e-3 {
		t.Fatalf("mass %f, want %f", gotMass, wantMass)
	}
}

// TestPushUnoptMatches: results are identical with optimizations disabled.
func TestPushUnoptMatches(t *testing.T) {
	cfg := generate.Config{Kind: "rmat", Scale: 8, EdgeFactor: 8, Seed: 68}
	edges, err := generate.Edges(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ranks [2][]float64
	for i, opt := range []gluon.Options{gluon.Opt(), gluon.Unopt()} {
		res, err := dsys.Run(cfg.NumNodes(), edges, dsys.RunConfig{
			Hosts: 4, Policy: partition.HVC, Opt: opt,
			CollectValues: true, MaxRounds: 500,
		}, pr.NewGaloisPush(1e-10, 2))
		if err != nil {
			t.Fatal(err)
		}
		ranks[i] = res.Values
	}
	for i := range ranks[0] {
		if math.Abs(ranks[0][i]-ranks[1][i]) > 1e-9 {
			t.Fatalf("node %d: opt %g vs unopt %g", i, ranks[0][i], ranks[1][i])
		}
	}
}
