package pr

// Push-style (residual) PageRank — the variant the paper's §2.3 uses to
// illustrate mirror resets: "for push-style pagerank, the labels are reset
// to 0". Every node keeps an unconsumed residual; when the master consumes
// it, the residual moves into the node's rank and a per-edge share
// δ = α·r/outdeg(v) is pushed along every out-edge of v.
//
// Distributed, this uses two fields, which keeps all flows one-directional
// and double-count-free:
//
//   - residual: write-at-destination, reduce-only. Proxies accumulate
//     partial residuals from their local in-edges; partials add-reduce to
//     the master and mirrors reset to the + identity, 0 (the paper's
//     example).
//   - delta: read-at-source, broadcast-only. Only the master computes δ
//     when consuming; mirrors holding v's out-edges receive δ read-only and
//     apply it to their local out-neighbors next round. Out-edges of v are
//     partitioned across proxies, so each edge sees δ exactly once.
//
// Ranks live only on masters and are never communicated; the converged
// estimate of node v is rank(v) + leftover residual(v).

import (
	"gluon/internal/bitset"
	"gluon/internal/dsys"
	"gluon/internal/engine/galois"
	"gluon/internal/fields"
	"gluon/internal/gluon"
	"gluon/internal/partition"
)

// Field IDs for the push variant.
const (
	FieldIDResidual = 7
	FieldIDDelta    = 8
)

type pushProgram struct {
	p   *partition.Partition
	g   *gluon.Gluon
	e   *galois.Engine
	tol float64

	rank      []float64 // masters only (by local ID)
	resBits   []uint64  // residual partials as float64 bits, all proxies
	deltaBits []uint64  // per-round consumed share, masters + out-mirrors
	outdeg    []uint64

	resField    gluon.Field[float64]
	deltaField  gluon.Field[float64]
	outdegField gluon.Field[uint64]
}

// NewGaloisPush builds the push-style PageRank program on the Galois
// engine.
func NewGaloisPush(tol float64, workers int) dsys.ProgramFactory {
	return func(p *partition.Partition, g *gluon.Gluon) (dsys.Program, error) {
		if tol <= 0 {
			tol = DefaultTolerance
		}
		n := p.NumProxies()
		prog := &pushProgram{
			p: p, g: g, tol: tol,
			e:         galois.New(p.Graph, workers),
			rank:      make([]float64, n),
			resBits:   make([]uint64, n),
			deltaBits: make([]uint64, n),
			outdeg:    make([]uint64, n),
		}
		prog.resField = gluon.Field[float64]{
			ID:     FieldIDResidual,
			Name:   "pr-residual",
			Write:  gluon.AtDestination,
			Read:   gluon.AtDestination,
			Reduce: fields.SumF64Bits{Bits: prog.resBits},
		}
		prog.deltaField = gluon.Field[float64]{
			ID:        FieldIDDelta,
			Name:      "pr-delta",
			Write:     gluon.AtDestination, // only masters write it, during apply
			Read:      gluon.AtSource,
			Broadcast: fields.SetF64Bits{Bits: prog.deltaBits},
		}
		prog.outdegField = gluon.Field[uint64]{
			ID:        FieldIDOutDeg,
			Name:      "pr-outdeg",
			Write:     gluon.AtSource,
			Read:      gluon.AtSource,
			Reduce:    fields.SumU64{Vals: prog.outdeg},
			Broadcast: fields.SetU64{Vals: prog.outdeg},
		}
		return prog, nil
	}
}

// Name implements dsys.Program.
func (pp *pushProgram) Name() string { return "pr-push" }

// Init implements dsys.Program: global out-degrees via a one-time sync;
// masters seed their residual with the teleport mass and immediately
// consume it into the first round's deltas.
func (pp *pushProgram) Init() (*bitset.Bitset, error) {
	n := pp.p.NumProxies()
	for lid := uint32(0); lid < n; lid++ {
		pp.outdeg[lid] = uint64(pp.p.Graph.OutDegree(lid))
	}
	if err := gluon.Sync(pp.g, pp.outdegField, nil); err != nil {
		return nil, err
	}
	res := fields.SumF64Bits{Bits: pp.resBits}
	for lid := uint32(0); lid < pp.p.NumMasters; lid++ {
		res.Reduce(lid, 1-Alpha)
	}
	frontier := bitset.New(n)
	if err := pp.applyAndBroadcast(frontier); err != nil {
		return nil, err
	}
	return frontier, nil
}

// Round implements dsys.Program: every active proxy consumes its delta
// once, pushing it to its local out-neighbors' residual partials.
func (pp *pushProgram) Round(frontier *bitset.Bitset) (*bitset.Bitset, error) {
	updated := bitset.New(pp.p.NumProxies())
	pp.e.DoAllFrontier(frontier, func(e *galois.Engine, u uint32, push func(uint32)) {
		d := fields.AtomicSwapF64Bits(&pp.deltaBits[u], 0)
		if d == 0 {
			return
		}
		for _, nb := range e.Graph.Neighbors(u) {
			fields.AtomicAddF64Bits(&pp.resBits[nb], d)
			updated.Set(nb)
		}
	})
	return updated, nil
}

// Sync implements dsys.Program: reduce residual partials to masters, apply
// (consume residual into rank, emit delta), broadcast deltas.
func (pp *pushProgram) Sync(updated *bitset.Bitset) error {
	if err := gluon.SyncReduce(pp.g, pp.resField, updated); err != nil {
		return err
	}
	return pp.applyAndBroadcast(updated)
}

// applyAndBroadcast consumes master residuals above tolerance and ships the
// resulting deltas; on return, updated holds the next frontier.
func (pp *pushProgram) applyAndBroadcast(updated *bitset.Bitset) error {
	updated.Reset()
	for m := uint32(0); m < pp.p.NumMasters; m++ {
		r := fields.LoadF64Bits(&pp.resBits[m])
		if r < pp.tol {
			continue
		}
		fields.AtomicSwapF64Bits(&pp.resBits[m], 0)
		pp.rank[m] += r
		if deg := pp.outdeg[m]; deg > 0 {
			fields.AtomicSwapF64Bits(&pp.deltaBits[m], Alpha*r/float64(deg))
			updated.SetUnsync(m)
		}
	}
	return gluon.SyncBroadcast(pp.g, pp.deltaField, updated)
}

// Finalize implements dsys.Program: sweep residual partials still sitting
// on mirrors back to their masters so rank+residual is exact up to the
// consumed mass. Mirror residuals are pure partials (delta copies live in a
// separate field), so a full reduce cannot double-count.
func (pp *pushProgram) Finalize() error {
	return gluon.SyncReduce(pp.g, pp.resField, nil)
}

// MasterValue implements dsys.Program: converged rank estimate.
func (pp *pushProgram) MasterValue(lid uint32) float64 {
	return pp.rank[lid] + fields.LoadF64Bits(&pp.resBits[lid])
}
