// Package bfs implements distributed breadth-first search as a vertex
// program over each of the three engines (Ligra, Galois, IrGL). The node
// field is the BFS level, min-reduced across proxies; the operator is
// push-style (write at destination, read at source), so OEC partitions
// need only the reduce pattern and IEC only the broadcast pattern (§3.2).
package bfs

import (
	"gluon/internal/bitset"
	"gluon/internal/dsys"
	"gluon/internal/engine/galois"
	"gluon/internal/engine/irgl"
	"gluon/internal/engine/ligra"
	"gluon/internal/fields"
	"gluon/internal/gluon"
	"gluon/internal/partition"
)

// FieldID namespaces bfs's dist field in Gluon's tag space.
const FieldID = 1

// Infinity marks unreached nodes.
const Infinity = fields.InfinityU32

// common holds the engine-independent program state.
type common struct {
	p      *partition.Partition
	g      *gluon.Gluon
	dist   []uint32
	source uint64
	field  gluon.Field[uint32]
}

func newCommon(p *partition.Partition, g *gluon.Gluon, source uint64) *common {
	c := &common{p: p, g: g, source: source}
	c.dist = make([]uint32, p.NumProxies())
	c.field = gluon.Field[uint32]{
		ID:        FieldID,
		Name:      "bfs-dist",
		Write:     gluon.AtDestination,
		Read:      gluon.AtSource,
		Reduce:    fields.MinU32{Labels: c.dist},
		Broadcast: fields.SetU32{Labels: c.dist},
	}
	return c
}

// Name implements dsys.Program.
func (c *common) Name() string { return "bfs" }

// Init sets every proxy's level to infinity and seeds the source. Every
// host holding a proxy of the source initializes it locally, so no initial
// communication round is needed.
func (c *common) Init() (*bitset.Bitset, error) {
	for i := range c.dist {
		c.dist[i] = Infinity
	}
	frontier := bitset.New(c.p.NumProxies())
	if lid, ok := c.p.LID(c.source); ok {
		c.dist[lid] = 0
		frontier.SetUnsync(lid)
	}
	return frontier, nil
}

// Sync implements dsys.Program.
func (c *common) Sync(updated *bitset.Bitset) error {
	return gluon.Sync(c.g, c.field, updated)
}

// Finalize implements dsys.Program.
func (c *common) Finalize() error { return gluon.BroadcastAll(c.g, c.field) }

// MasterValue implements dsys.Program.
func (c *common) MasterValue(lid uint32) float64 { return float64(c.dist[lid]) }

// ---------- D-Ligra ----------

type ligraProgram struct {
	*common
	lg      *ligra.Graph
	workers int
}

// NewLigra builds the level-synchronous, direction-optimizing Ligra program.
func NewLigra(source uint64, workers int) dsys.ProgramFactory {
	return func(p *partition.Partition, g *gluon.Gluon) (dsys.Program, error) {
		return &ligraProgram{
			common:  newCommon(p, g, source),
			lg:      ligra.NewGraph(p.Graph, true),
			workers: workers,
		}, nil
	}
}

// Round implements dsys.Program: one BFS level via edgeMap.
func (pr *ligraProgram) Round(frontier *bitset.Bitset) (*bitset.Bitset, error) {
	dist := pr.dist
	next := ligra.EdgeMap(pr.lg, frontier, ligra.EdgeMapConfig{
		Workers: pr.workers,
		Cond:    func(d uint32) bool { return fields.AtomicLoadU32(&dist[d]) == Infinity },
		Push: func(s, d, w uint32) bool {
			ds := fields.AtomicLoadU32(&dist[s])
			if ds == Infinity {
				// A broadcast can deliver (and activate) a still-unreached
				// mirror; guard against Infinity+1 wrap-around.
				return false
			}
			return fields.AtomicMinU32(&dist[d], ds+1)
		},
		Pull: func(d, s, w uint32) bool {
			// d has a single writer per pass; s is only read (bfs writes
			// target unreached nodes, and frontier members are reached), so
			// no atomics are needed in dense mode.
			if dist[s] != Infinity && dist[d] > dist[s]+1 {
				dist[d] = dist[s] + 1
				return true
			}
			return false
		},
	})
	return next, nil
}

// ---------- D-Galois ----------

type galoisProgram struct {
	*common
	e *galois.Engine
}

// NewGalois builds the asynchronous worklist program: level updates
// propagate transitively within the host in a single round.
func NewGalois(source uint64, workers int) dsys.ProgramFactory {
	return func(p *partition.Partition, g *gluon.Gluon) (dsys.Program, error) {
		return &galoisProgram{
			common: newCommon(p, g, source),
			e:      galois.New(p.Graph, workers),
		}, nil
	}
}

// Round implements dsys.Program: chaotic relaxation until local
// quiescence, with duplicate scheduling suppressed by a scheduled-bit set.
func (pr *galoisProgram) Round(frontier *bitset.Bitset) (*bitset.Bitset, error) {
	dist := pr.dist
	updated := bitset.New(pr.p.NumProxies())
	inWL := frontier.Clone()
	pr.e.DoAllFrontier(frontier, func(e *galois.Engine, u uint32, push func(uint32)) {
		inWL.Clear(u)
		du := fields.AtomicLoadU32(&dist[u])
		if du == Infinity {
			return
		}
		for _, d := range e.Graph.Neighbors(u) {
			if fields.AtomicMinU32(&dist[d], du+1) {
				updated.Set(d)
				if inWL.TestAndSet(d) {
					push(d)
				}
			}
		}
	})
	return updated, nil
}

// ---------- D-IrGL ----------

type irglProgram struct {
	*common
	dev  *irgl.Device
	dbuf *irgl.Buffer[uint32]
}

// NewIrGL builds the bulk-synchronous device program. The dist field lives
// in a device buffer; Gluon's extract/set calls are the staged host/device
// transfers a GPU plugin performs.
func NewIrGL(source uint64, workers int) dsys.ProgramFactory {
	return func(p *partition.Partition, g *gluon.Gluon) (dsys.Program, error) {
		dev := irgl.New(p.Graph, workers)
		prog := &irglProgram{common: newCommon(p, g, source), dev: dev}
		prog.dbuf = irgl.NewBuffer[uint32](dev, p.NumProxies())
		// Rebind the sync field onto the device buffer: the buffer specs
		// provide the bulk extract variant and account every host/device
		// staging copy.
		prog.dist = prog.dbuf.Data()
		prog.field.Reduce = irgl.MinU32Buf{B: prog.dbuf}
		prog.field.Broadcast = irgl.SetU32Buf{B: prog.dbuf}
		return prog, nil
	}
}

// Round implements dsys.Program: one data-driven relaxation kernel.
func (pr *irglProgram) Round(frontier *bitset.Bitset) (*bitset.Bitset, error) {
	dist := pr.dbuf.Data()
	updated := bitset.New(pr.p.NumProxies())
	csr := pr.dev.Graph
	pr.dev.KernelMasked(frontier, func(u uint32) {
		du := fields.AtomicLoadU32(&dist[u])
		if du == Infinity {
			return
		}
		for _, d := range csr.Neighbors(u) {
			if fields.AtomicMinU32(&dist[d], du+1) {
				updated.Set(d)
			}
		}
	})
	return updated, nil
}
