// Package bc implements single-source betweenness centrality (Brandes'
// dependency accumulation), another application from the original D-Galois
// suite. Beyond the four paper benchmarks it exercises the synchronization
// patterns the paper calls "complementary" (§3.2): the backward phase
// writes a field at the SOURCE endpoint of edges and reads it at the
// DESTINATION endpoint, so Gluon reduces from mirrors-with-out-edges and
// broadcasts to mirrors-with-in-edges — the mirror image of the push-style
// patterns bfs/cc/pr/sssp need.
//
// Phases (unweighted Brandes):
//
//  1. Forward BFS from the source, accumulating per-node shortest-path
//     counts σ: level is min-reduced, σ is add-reduced (both
//     write-at-destination / read-at-source).
//  2. A full reconciliation of level and σ.
//  3. Backward sweep, one BFS level per round from the deepest level up:
//     δ(v) += σ(v)/σ(w)·(1+δ(w)) over forward edges v→w one level down.
//     δ is written at source, read at destination.
//
// The node's dependency δ is its (single-source) betweenness contribution.
package bc

import (
	"math"

	"gluon/internal/bitset"
	"gluon/internal/dsys"
	"gluon/internal/engine/galois"
	"gluon/internal/fields"
	"gluon/internal/gluon"
	"gluon/internal/partition"
)

// Field IDs for bc's three synchronized fields.
const (
	FieldIDLevel = 11
	FieldIDSigma = 12
	FieldIDDelta = 13
)

// Infinity marks unreached nodes in the forward phase.
const Infinity = fields.InfinityU32

type phase int

const (
	phaseForward phase = iota
	phaseBackward
	phaseDone
)

type program struct {
	p *partition.Partition
	g *gluon.Gluon
	e *galois.Engine

	source uint64

	level     []uint32
	sigmaBits []uint64 // σ as float64 bits (concurrent accumulation)
	deltaBits []uint64 // δ partials as float64 bits

	levelField gluon.Field[uint32]
	sigmaField gluon.Field[float64]
	deltaField gluon.Field[float64]

	phase phase
	// fwdLevel is the level being expanded in the forward phase;
	// backLevel the level being accumulated in the backward phase.
	fwdLevel  uint32
	backLevel int64
	maxLevel  uint32
	// byLevel[l] lists local proxies at level l (built after forward).
	byLevel [][]uint32
}

// New builds the bc program (Galois engine, as in the original suite).
func New(source uint64, workers int) dsys.ProgramFactory {
	return func(p *partition.Partition, g *gluon.Gluon) (dsys.Program, error) {
		n := p.NumProxies()
		prog := &program{
			p: p, g: g, source: source,
			e:         galois.New(p.Graph, workers),
			level:     make([]uint32, n),
			sigmaBits: make([]uint64, n),
			deltaBits: make([]uint64, n),
		}
		prog.levelField = gluon.Field[uint32]{
			ID:   FieldIDLevel,
			Name: "bc-level",
			// The forward operator reads the level at BOTH endpoints: at the
			// source to select the frontier, and at the destination to guard
			// the σ accumulation (only first-time claims at exactly cur+1
			// may count paths). Read-anywhere makes Gluon broadcast settled
			// levels to every mirror, so in-edge-only mirrors also learn
			// them and refuse stale claims.
			Write:     gluon.AtDestination,
			Read:      gluon.Anywhere,
			Reduce:    fields.MinU32{Labels: prog.level},
			Broadcast: fields.SetU32{Labels: prog.level},
		}
		prog.sigmaField = gluon.Field[float64]{
			ID:        FieldIDSigma,
			Name:      "bc-sigma",
			Write:     gluon.AtDestination,
			Read:      gluon.AtSource,
			Reduce:    fields.SumF64Bits{Bits: prog.sigmaBits},
			Broadcast: fields.SetF64Bits{Bits: prog.sigmaBits},
		}
		prog.deltaField = gluon.Field[float64]{
			ID:   FieldIDDelta,
			Name: "bc-delta",
			// The complementary pattern: δ is accumulated at the SOURCE
			// endpoint of forward edges and read by predecessors at the
			// DESTINATION endpoint.
			Write:     gluon.AtSource,
			Read:      gluon.AtDestination,
			Reduce:    fields.SumF64Bits{Bits: prog.deltaBits},
			Broadcast: fields.SetF64Bits{Bits: prog.deltaBits},
		}
		return prog, nil
	}
}

// Name implements dsys.Program.
func (pr *program) Name() string { return "bc" }

// Init implements dsys.Program.
func (pr *program) Init() (*bitset.Bitset, error) {
	for i := range pr.level {
		pr.level[i] = Infinity
	}
	frontier := bitset.New(pr.p.NumProxies())
	if lid, ok := pr.p.LID(pr.source); ok {
		pr.level[lid] = 0
		fields.AtomicAddF64Bits(&pr.sigmaBits[lid], 1)
		frontier.SetUnsync(lid)
	}
	pr.phase = phaseForward
	pr.fwdLevel = 0
	return frontier, nil
}

// Round implements dsys.Program, dispatching on phase.
func (pr *program) Round(frontier *bitset.Bitset) (*bitset.Bitset, error) {
	switch pr.phase {
	case phaseForward:
		return pr.forwardRound(frontier), nil
	case phaseBackward:
		return pr.backwardRound(), nil
	default:
		return bitset.New(pr.p.NumProxies()), nil
	}
}

// forwardRound expands BFS level fwdLevel, accumulating σ partials at
// level fwdLevel+1 proxies.
func (pr *program) forwardRound(frontier *bitset.Bitset) *bitset.Bitset {
	updated := bitset.New(pr.p.NumProxies())
	cur := pr.fwdLevel
	pr.e.DoAllFrontier(frontier, func(e *galois.Engine, u uint32, push func(uint32)) {
		if pr.level[u] != cur {
			return // stale activation (e.g. dense-mode delivery)
		}
		su := fields.LoadF64Bits(&pr.sigmaBits[u])
		for _, w := range e.Graph.Neighbors(u) {
			// Claim w for level cur+1 (first writer wins locally; the min
			// reduce arbitrates across hosts).
			lw := fields.AtomicLoadU32(&pr.level[w])
			if lw < cur+1 {
				continue
			}
			fields.AtomicMinU32(&pr.level[w], cur+1)
			fields.AtomicAddF64Bits(&pr.sigmaBits[w], su)
			updated.Set(w)
		}
	})
	return updated
}

// backwardRound accumulates δ for nodes at backLevel from their successors
// at backLevel+1.
func (pr *program) backwardRound() *bitset.Bitset {
	updated := bitset.New(pr.p.NumProxies())
	if pr.backLevel < 0 {
		return updated
	}
	lev := uint32(pr.backLevel)
	nodes := pr.byLevel[lev]
	pr.e.DoAll(nodes, func(e *galois.Engine, v uint32, push func(uint32)) {
		sv := fields.LoadF64Bits(&pr.sigmaBits[v])
		if sv == 0 {
			return
		}
		var acc float64
		for _, w := range e.Graph.Neighbors(v) {
			if pr.level[w] == lev+1 {
				sw := fields.LoadF64Bits(&pr.sigmaBits[w])
				if sw > 0 {
					acc += sv / sw * (1 + fields.LoadF64Bits(&pr.deltaBits[w]))
				}
			}
		}
		if acc != 0 {
			fields.AtomicAddF64Bits(&pr.deltaBits[v], acc)
			updated.Set(v)
		}
	})
	return updated
}

// Sync implements dsys.Program: per-phase field synchronization and phase
// transitions (which are global decisions made with all-reduces, so every
// host switches in the same round).
func (pr *program) Sync(updated *bitset.Bitset) error {
	switch pr.phase {
	case phaseForward:
		// Level claims and σ partials travel to masters; settled values
		// come back to source-side mirrors for the next expansion.
		levelUpd := updated.Clone()
		if err := gluon.Sync(pr.g, pr.levelField, levelUpd); err != nil {
			return err
		}
		if err := gluon.Sync(pr.g, pr.sigmaField, updated); err != nil {
			return err
		}
		if err := updated.Union(levelUpd); err != nil {
			return err
		}
		pr.fwdLevel++
		active, err := pr.g.AllReduceSum(uint64(updated.Count()))
		if err != nil {
			return err
		}
		if active != 0 {
			return nil
		}
		// Forward phase exhausted: reconcile, build level buckets, seed the
		// backward sweep. updated must end non-empty on some host while any
		// backward work remains, or dsys would stop; the deepest level's
		// owners re-activate here.
		if err := pr.startBackward(updated); err != nil {
			return err
		}
		return nil
	case phaseBackward:
		if err := gluon.Sync(pr.g, pr.deltaField, updated); err != nil {
			return err
		}
		pr.backLevel--
		if pr.backLevel < 0 {
			pr.phase = phaseDone
			// Leave updated as delivered; the final round produces empty
			// updates everywhere and dsys terminates.
		} else {
			// Keep the loop alive: hosts holding next-level nodes stay
			// active.
			for _, v := range pr.byLevel[pr.backLevel] {
				updated.Set(v)
			}
		}
		return nil
	default:
		updated.Reset()
		return nil
	}
}

// startBackward reconciles level and σ on every proxy, buckets local
// proxies by level, and seeds the backward sweep.
func (pr *program) startBackward(updated *bitset.Bitset) error {
	if err := gluon.BroadcastAll(pr.g, pr.levelField); err != nil {
		return err
	}
	if err := gluon.BroadcastAll(pr.g, pr.sigmaField); err != nil {
		return err
	}
	var localMax uint32
	for _, l := range pr.level {
		if l != Infinity && l > localMax {
			localMax = l
		}
	}
	gm, err := pr.g.AllReduceMax(uint64(localMax))
	if err != nil {
		return err
	}
	pr.maxLevel = uint32(gm)
	pr.byLevel = make([][]uint32, pr.maxLevel+2)
	for lid, l := range pr.level {
		if l != Infinity {
			pr.byLevel[l] = append(pr.byLevel[l], uint32(lid))
		}
	}
	pr.phase = phaseBackward
	pr.backLevel = int64(pr.maxLevel) - 1
	updated.Reset()
	if pr.backLevel >= 0 {
		for _, v := range pr.byLevel[pr.backLevel] {
			updated.Set(v)
		}
	}
	return nil
}

// Finalize implements dsys.Program.
func (pr *program) Finalize() error {
	return gluon.BroadcastAll(pr.g, pr.deltaField)
}

// MasterValue implements dsys.Program: the node's dependency δ (its
// betweenness contribution for this source). NaN guard for safety.
func (pr *program) MasterValue(lid uint32) float64 {
	d := fields.LoadF64Bits(&pr.deltaBits[lid])
	if math.IsNaN(d) {
		return 0
	}
	return d
}

// Accumulate runs single-source bc from each of the given sources and sums
// the dependencies — batched Brandes, the outer loop the original suite
// drives around this program. run executes one configured distributed run
// and returns the per-node dependencies (callers typically close over
// dsys.Run with their RunConfig).
func Accumulate(sources []uint64, run func(source uint64) ([]float64, error)) ([]float64, error) {
	var total []float64
	for _, s := range sources {
		deps, err := run(s)
		if err != nil {
			return nil, err
		}
		if total == nil {
			total = make([]float64, len(deps))
		}
		for i, d := range deps {
			total[i] += d
		}
	}
	return total, nil
}
