package bc_test

import (
	"fmt"
	"math"
	"testing"

	"gluon/internal/algorithms/bc"
	"gluon/internal/dsys"
	"gluon/internal/fields"
	"gluon/internal/generate"
	"gluon/internal/gluon"
	"gluon/internal/graph"
	"gluon/internal/partition"
)

// refBC computes single-source dependencies with sequential Brandes
// (unweighted; parallel edges count as distinct paths, matching the
// distributed implementation).
func refBC(g *graph.CSR, source uint32) []float64 {
	n := g.NumNodes()
	level := make([]uint32, n)
	sigma := make([]float64, n)
	for i := range level {
		level[i] = fields.InfinityU32
	}
	level[source] = 0
	sigma[source] = 1
	var order []uint32
	queue := []uint32{source}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, w := range g.Neighbors(u) {
			if level[w] == fields.InfinityU32 {
				level[w] = level[u] + 1
				queue = append(queue, w)
			}
			if level[w] == level[u]+1 {
				sigma[w] += sigma[u]
			}
		}
	}
	delta := make([]float64, n)
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		for _, w := range g.Neighbors(v) {
			if level[w] == level[v]+1 && sigma[w] > 0 {
				delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
			}
		}
	}
	return delta
}

func input(t *testing.T, kind string, scale uint) (uint64, []graph.Edge, *graph.CSR) {
	t.Helper()
	cfg := generate.Config{Kind: kind, Scale: scale, EdgeFactor: 8, Seed: 71}
	edges, err := generate.Edges(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.FromEdges(cfg.NumNodes(), edges, false)
	if err != nil {
		t.Fatal(err)
	}
	return cfg.NumNodes(), edges, g
}

func TestBCMatrix(t *testing.T) {
	numNodes, edges, g := input(t, "rmat", 9)
	source := g.MaxOutDegreeNode()
	want := refBC(g, source)
	for _, pol := range partition.AllKinds() {
		for _, hosts := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("%s/h%d", pol, hosts), func(t *testing.T) {
				res, err := dsys.Run(numNodes, edges, dsys.RunConfig{
					Hosts: hosts, Policy: pol, Opt: gluon.Opt(),
					CollectValues: true, MaxRounds: 10000,
				}, bc.New(uint64(source), 2))
				if err != nil {
					t.Fatal(err)
				}
				for u, w := range want {
					if math.Abs(res.Values[u]-w) > 1e-6*(1+math.Abs(w)) {
						t.Fatalf("node %d: δ=%g, want %g", u, res.Values[u], w)
					}
				}
			})
		}
	}
}

func TestBCChain(t *testing.T) {
	// On a chain 0→1→…→n-1 from source 0, δ(i) = n-1-i.
	cfg := generate.Config{Kind: "chain", Scale: 6, EdgeFactor: 1}
	edges, err := generate.Edges(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dsys.Run(cfg.NumNodes(), edges, dsys.RunConfig{
		Hosts: 3, Policy: partition.OEC, Opt: gluon.Opt(),
		CollectValues: true, MaxRounds: 10000,
	}, bc.New(0, 2))
	if err != nil {
		t.Fatal(err)
	}
	n := int(cfg.NumNodes())
	for i := 0; i < n; i++ {
		want := float64(n - 1 - i)
		if math.Abs(res.Values[i]-want) > 1e-9 {
			t.Fatalf("node %d: δ=%g, want %g", i, res.Values[i], want)
		}
	}
}

// TestAccumulateMultiSource: batched bc over several sources equals the
// sum of sequential per-source dependencies.
func TestAccumulateMultiSource(t *testing.T) {
	numNodes, edges, g := input(t, "rmat", 8)
	sources := []uint64{uint64(g.MaxOutDegreeNode()), 1, 7}
	want := make([]float64, numNodes)
	for _, s := range sources {
		for u, d := range refBC(g, uint32(s)) {
			want[u] += d
		}
	}
	got, err := bc.Accumulate(sources, func(source uint64) ([]float64, error) {
		res, err := dsys.Run(numNodes, edges, dsys.RunConfig{
			Hosts: 3, Policy: partition.CVC, Opt: gluon.Opt(),
			CollectValues: true, MaxRounds: 10000,
		}, bc.New(source, 2))
		if err != nil {
			return nil, err
		}
		return res.Values, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for u := range want {
		if math.Abs(got[u]-want[u]) > 1e-6*(1+math.Abs(want[u])) {
			t.Fatalf("node %d: %g, want %g", u, got[u], want[u])
		}
	}
}

func TestBCUnoptMatches(t *testing.T) {
	numNodes, edges, g := input(t, "webcrawl", 8)
	source := g.MaxOutDegreeNode()
	want := refBC(g, source)
	res, err := dsys.Run(numNodes, edges, dsys.RunConfig{
		Hosts: 4, Policy: partition.HVC, Opt: gluon.Unopt(),
		CollectValues: true, MaxRounds: 10000,
	}, bc.New(uint64(source), 2))
	if err != nil {
		t.Fatal(err)
	}
	for u, w := range want {
		if math.Abs(res.Values[u]-w) > 1e-6*(1+math.Abs(w)) {
			t.Fatalf("node %d: δ=%g, want %g", u, res.Values[u], w)
		}
	}
}
