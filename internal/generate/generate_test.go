package generate

import (
	"testing"

	"gluon/internal/graph"
)

func TestDeterminism(t *testing.T) {
	for _, kind := range []string{"rmat", "kron", "webcrawl", "twitterlike", "random"} {
		cfg := Config{Kind: kind, Scale: 10, EdgeFactor: 4, Seed: 123, Weighted: true}
		a, err := Edges(cfg)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		b, err := Edges(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("%s: lengths differ: %d vs %d", kind, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: edge %d differs: %v vs %v", kind, i, a[i], b[i])
			}
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, _ := Edges(Config{Kind: "rmat", Scale: 10, EdgeFactor: 4, Seed: 1})
	b, _ := Edges(Config{Kind: "rmat", Scale: 10, EdgeFactor: 4, Seed: 2})
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical edge lists")
	}
}

func TestNodeRangeAndCount(t *testing.T) {
	for _, kind := range []string{"rmat", "kron", "webcrawl", "twitterlike", "random"} {
		cfg := Config{Kind: kind, Scale: 9, EdgeFactor: 8, Seed: 7}
		edges, err := Edges(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if uint64(len(edges)) != cfg.NumEdges() {
			t.Fatalf("%s: %d edges, want %d", kind, len(edges), cfg.NumEdges())
		}
		n := cfg.NumNodes()
		for _, e := range edges {
			if e.Src >= n || e.Dst >= n {
				t.Fatalf("%s: edge (%d,%d) out of range n=%d", kind, e.Src, e.Dst, n)
			}
		}
	}
}

func TestWeights(t *testing.T) {
	cfg := Config{Kind: "random", Scale: 10, EdgeFactor: 4, Seed: 3, Weighted: true, MaxWeight: 50}
	edges, err := Edges(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint32]bool{}
	for _, e := range edges {
		if e.Weight < 1 || e.Weight > 50 {
			t.Fatalf("weight %d out of [1,50]", e.Weight)
		}
		seen[e.Weight] = true
	}
	if len(seen) < 10 {
		t.Fatalf("only %d distinct weights; generator looks broken", len(seen))
	}
}

func TestUnweightedHasZeroWeights(t *testing.T) {
	edges, err := Edges(Config{Kind: "random", Scale: 8, EdgeFactor: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range edges {
		if e.Weight != 0 {
			t.Fatal("unweighted generation produced weights")
		}
	}
}

func TestChain(t *testing.T) {
	edges, err := Edges(Config{Kind: "chain", Scale: 4, EdgeFactor: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 15 {
		t.Fatalf("chain(16) has %d edges", len(edges))
	}
	for i, e := range edges {
		if e.Src != uint64(i) || e.Dst != uint64(i+1) {
			t.Fatalf("chain edge %d = %v", i, e)
		}
	}
}

func TestStar(t *testing.T) {
	edges, err := Edges(Config{Kind: "star", Scale: 5, EdgeFactor: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 31 {
		t.Fatalf("star(32) has %d edges", len(edges))
	}
	for _, e := range edges {
		if e.Src != 0 {
			t.Fatalf("star edge source %d != 0", e.Src)
		}
	}
}

func TestGridIsSymmetricMesh(t *testing.T) {
	cfg := Config{Kind: "grid", Scale: 8} // 16x16
	edges, err := Edges(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 2 directions * (side*(side-1)) horizontal + same vertical.
	side := 16
	want := 2 * 2 * side * (side - 1)
	if len(edges) != want {
		t.Fatalf("grid edges = %d, want %d", len(edges), want)
	}
	// Every edge has its reverse.
	set := map[graph.Edge]bool{}
	for _, e := range edges {
		set[graph.Edge{Src: e.Src, Dst: e.Dst}] = true
	}
	for _, e := range edges {
		if !set[graph.Edge{Src: e.Dst, Dst: e.Src}] {
			t.Fatalf("grid missing reverse of %v", e)
		}
	}
}

func TestUnknownKind(t *testing.T) {
	if _, err := Edges(Config{Kind: "nope", Scale: 4}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

// TestSkewShapes verifies the degree-skew intent of the crawl generators:
// webcrawl has a heavier in-degree tail than out-degree; twitterlike the
// reverse (compare the paper's Table 1: clueweb12 max-Din 75M vs max-Dout
// 7447; twitter40 max-Dout 2.99M vs max-Din 0.77M).
func TestSkewShapes(t *testing.T) {
	build := func(kind string) graph.Properties {
		cfg := Config{Kind: kind, Scale: 13, EdgeFactor: 16, Seed: 11}
		edges, err := Edges(cfg)
		if err != nil {
			t.Fatal(err)
		}
		g, err := graph.FromEdges(cfg.NumNodes(), edges, false)
		if err != nil {
			t.Fatal(err)
		}
		return g.Stats()
	}
	wc := build("webcrawl")
	if wc.MaxInDeg <= wc.MaxOutDeg {
		t.Errorf("webcrawl: max in-degree %d not above max out-degree %d", wc.MaxInDeg, wc.MaxOutDeg)
	}
	tw := build("twitterlike")
	if tw.MaxOutDeg <= tw.MaxInDeg {
		t.Errorf("twitterlike: max out-degree %d not above max in-degree %d", tw.MaxOutDeg, tw.MaxInDeg)
	}
}

// TestRMATSkew checks the rmat generator produces a hub (graph500
// initiator matrices concentrate edges heavily).
func TestRMATSkew(t *testing.T) {
	cfg := Config{Kind: "rmat", Scale: 12, EdgeFactor: 16, Seed: 5}
	edges, _ := Edges(cfg)
	g, err := graph.FromEdges(cfg.NumNodes(), edges, false)
	if err != nil {
		t.Fatal(err)
	}
	s := g.Stats()
	if float64(s.MaxOutDeg) < 8*s.AvgDegree {
		t.Errorf("rmat max out-degree %d vs avg %.1f: no skew", s.MaxOutDeg, s.AvgDegree)
	}
}

func TestRNGUint64n(t *testing.T) {
	r := newRNG(9)
	for i := 0; i < 10000; i++ {
		if v := r.Uint64n(7); v >= 7 {
			t.Fatalf("Uint64n(7) = %d", v)
		}
	}
	// Rough uniformity over a small modulus.
	counts := make([]int, 4)
	for i := 0; i < 40000; i++ {
		counts[r.Uint64n(4)]++
	}
	for i, c := range counts {
		if c < 9000 || c > 11000 {
			t.Fatalf("Uint64n(4) bucket %d count %d far from uniform", i, c)
		}
	}
}

func BenchmarkRMAT(b *testing.B) {
	cfg := Config{Kind: "rmat", Scale: 14, EdgeFactor: 16, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Edges(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWebcrawl(b *testing.B) {
	cfg := Config{Kind: "webcrawl", Scale: 14, EdgeFactor: 16, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Edges(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
