package generate

// rng is a small, fast, deterministic pseudo-random generator
// (xoshiro256**-style core seeded by splitmix64). Generators in this package
// must be reproducible across runs and platforms so that experiments are
// repeatable; stdlib math/rand would also work, but a local implementation
// pins the sequence independent of Go release behaviour.
type rng struct {
	s [4]uint64
}

func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func newRNG(seed uint64) *rng {
	r := &rng{}
	for i := range r.s {
		r.s[i] = splitmix64(&seed)
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 pseudo-random bits.
func (r *rng) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Uint32 returns the next 32 pseudo-random bits.
func (r *rng) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Float64 returns a uniform float64 in [0, 1).
func (r *rng) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Uint64n returns a uniform value in [0, n). n must be > 0.
func (r *rng) Uint64n(n uint64) uint64 {
	// Lemire's multiply-shift rejection method.
	hi, lo := mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = mul64(r.Uint64(), n)
		}
	}
	return hi
}

func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return
}
