// Package generate produces the synthetic input graphs used by the
// experiments. The paper evaluates on RMAT and Kronecker graphs generated
// with the graph500 probabilities (0.57, 0.19, 0.19, 0.05) and on three
// real-world web crawls (twitter40, clueweb12, wdc12). The crawls are not
// redistributable at laptop scale, so this package also provides a
// power-law "webcrawl" generator that reproduces the property that drives
// the paper's results: heavy-tailed in/out degree skew (see DESIGN.md §2).
//
// All generators are deterministic in their seed.
package generate

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"gluon/internal/graph"
)

// Graph500 initiator probabilities for RMAT/Kronecker, per the paper (§5.1).
const (
	ProbA = 0.57
	ProbB = 0.19
	ProbC = 0.19
	ProbD = 0.05
)

// Config selects a synthetic graph.
type Config struct {
	// Kind is one of "rmat", "kron", "webcrawl", "twitterlike", "random",
	// "grid", "chain", "star".
	Kind string
	// Scale: the graph has 2^Scale nodes (grid: side length 2^(Scale/2)).
	Scale uint
	// EdgeFactor: average directed edges per node.
	EdgeFactor uint
	// Seed drives all pseudo-randomness.
	Seed uint64
	// Weighted adds edge weights in [1, MaxWeight].
	Weighted  bool
	MaxWeight uint32
}

// NumNodes returns the node count implied by the config.
func (c Config) NumNodes() uint64 { return 1 << c.Scale }

// NumEdges returns the edge count implied by the config.
func (c Config) NumEdges() uint64 { return c.NumNodes() * uint64(c.EdgeFactor) }

// Edges generates the configured graph's edge list in global-ID space.
func Edges(c Config) ([]graph.Edge, error) {
	if c.EdgeFactor == 0 {
		c.EdgeFactor = 16
	}
	if c.MaxWeight == 0 {
		c.MaxWeight = 100
	}
	var edges []graph.Edge
	switch c.Kind {
	case "rmat":
		edges = rmat(c, ProbA, ProbB, ProbC, ProbD, true)
	case "kron":
		// Kronecker generation shares the recursive-quadrant machinery with
		// RMAT but applies no per-level probability noise, matching the
		// sharper self-similar structure of kron graphs.
		edges = rmat(c, ProbA, ProbB, ProbC, ProbD, false)
	case "webcrawl":
		edges = webcrawl(c, 2.1, 1.6) // heavy in-degree tail like clueweb12/wdc12
	case "twitterlike":
		edges = webcrawl(c, 1.8, 2.2) // heavy out-degree tail like twitter40
	case "random":
		edges = random(c)
	case "grid":
		edges = grid(c)
	case "chain":
		edges = chain(c)
	case "star":
		edges = star(c)
	default:
		return nil, fmt.Errorf("generate: unknown graph kind %q", c.Kind)
	}
	if c.Weighted {
		addWeights(edges, c.Seed^0x57e1647, c.MaxWeight)
	}
	return edges, nil
}

// CSR generates the configured graph and assembles it into CSR form.
func CSR(c Config) (*graph.CSR, error) {
	edges, err := Edges(c)
	if err != nil {
		return nil, err
	}
	return graph.FromEdges(c.NumNodes(), edges, c.Weighted)
}

// rmat generates 2^scale nodes with edgeFactor*2^scale edges using the
// recursive matrix method of Chakrabarti et al., parallelized across
// workers. When noise is true a small deterministic perturbation is applied
// to the quadrant probabilities at each level (standard RMAT practice);
// without it the generator behaves like a Kronecker sampler.
func rmat(c Config, a, b, cc, d float64, noise bool) []graph.Edge {
	n := c.NumNodes()
	m := c.NumEdges()
	edges := make([]graph.Edge, m)
	workers := parallelism()
	var wg sync.WaitGroup
	chunk := (m + uint64(workers) - 1) / uint64(workers)
	for w := 0; w < workers; w++ {
		lo := uint64(w) * chunk
		if lo >= m {
			break
		}
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		wg.Add(1)
		go func(w int, lo, hi uint64) {
			defer wg.Done()
			r := newRNG(c.Seed ^ uint64(w)*0x9e3779b97f4a7c15 ^ 0x25a7)
			for i := lo; i < hi; i++ {
				src, dst := rmatEdge(r, c.Scale, n, a, b, cc, d, noise)
				edges[i] = graph.Edge{Src: src, Dst: dst}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	return edges
}

func rmatEdge(r *rng, scale uint, n uint64, a, b, c, d float64, noise bool) (uint64, uint64) {
	var src, dst uint64
	pa, pb, pc := a, b, c
	for level := uint(0); level < scale; level++ {
		x := r.Float64()
		switch {
		case x < pa:
			// quadrant A: no bits set
		case x < pa+pb:
			dst |= 1 << level
		case x < pa+pb+pc:
			src |= 1 << level
		default:
			src |= 1 << level
			dst |= 1 << level
		}
		if noise {
			// +-10% multiplicative noise, renormalized, per SSCA/graph500.
			na := pa * (0.9 + 0.2*r.Float64())
			nb := pb * (0.9 + 0.2*r.Float64())
			nc := pc * (0.9 + 0.2*r.Float64())
			nd := d * (0.9 + 0.2*r.Float64())
			s := na + nb + nc + nd
			pa, pb, pc = na/s, nb/s, nc/s
		}
	}
	return src % n, dst % n
}

// webcrawl generates a scale-free directed graph with independent Zipf
// exponents for in- and out-degree attractiveness, mimicking the asymmetric
// degree distributions of the paper's web crawls (Table 1: clueweb12 has
// max in-degree 75M vs max out-degree 7447; twitter is the reverse).
func webcrawl(c Config, inExp, outExp float64) []graph.Edge {
	n := c.NumNodes()
	m := c.NumEdges()
	// Precompute cumulative attractiveness tables by sampling node ranks.
	// We use the standard trick: node i has weight (i+1)^-exp under a random
	// permutation, sampled via inverse-CDF approximation.
	edges := make([]graph.Edge, m)
	workers := parallelism()
	var wg sync.WaitGroup
	chunk := (m + uint64(workers) - 1) / uint64(workers)
	permSeed := c.Seed ^ 0xbadc0ffee
	for w := 0; w < workers; w++ {
		lo := uint64(w) * chunk
		if lo >= m {
			break
		}
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		wg.Add(1)
		go func(w int, lo, hi uint64) {
			defer wg.Done()
			r := newRNG(c.Seed ^ uint64(w)*0x2545F4914F6CDD1D ^ 0xc4a31)
			for i := lo; i < hi; i++ {
				src := zipfSample(r, n, outExp)
				dst := zipfSample(r, n, inExp)
				// Scatter hub identities so hubs for in and out differ.
				edges[i] = graph.Edge{
					Src: scramble(src, permSeed) % n,
					Dst: scramble(dst, permSeed^0x5bd1e995) % n,
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	return edges
}

// zipfSample draws a rank in [0, n) with P(rank=k) proportional to
// (k+1)^-exp using the inverse-CDF of the continuous bounded Pareto
// approximation, which is accurate enough for workload generation and O(1).
func zipfSample(r *rng, n uint64, exp float64) uint64 {
	if exp == 1 {
		exp = 1.000001
	}
	u := r.Float64()
	// Inverse CDF of p(x) ~ x^-exp on [1, n]:
	// x = ((1-u) + u*n^(1-exp))^(1/(1-exp))
	oneMinus := 1 - exp
	nPow := powf(float64(n), oneMinus)
	x := powf((1-u)+u*nPow, 1/oneMinus)
	k := uint64(x) - 1
	if k >= n {
		k = n - 1
	}
	return k
}

// powf aliases math.Pow so the sampler reads cleanly.
func powf(x, y float64) float64 { return math.Pow(x, y) }

// scramble applies a Feistel-free multiplicative hash permutation-ish map on
// [0, 2^64); collisions modulo n are acceptable for workload generation.
func scramble(x, seed uint64) uint64 {
	x ^= seed
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// random generates a uniform (Erdős–Rényi G(n,m)) directed multigraph.
func random(c Config) []graph.Edge {
	n, m := c.NumNodes(), c.NumEdges()
	edges := make([]graph.Edge, m)
	r := newRNG(c.Seed ^ 0xe2d05)
	for i := range edges {
		edges[i] = graph.Edge{Src: r.Uint64n(n), Dst: r.Uint64n(n)}
	}
	return edges
}

// grid generates a 2-D torus-free mesh: high diameter, low degree — a
// road-network stand-in for sssp experiments.
func grid(c Config) []graph.Edge {
	side := uint64(1) << (c.Scale / 2)
	var edges []graph.Edge
	for y := uint64(0); y < side; y++ {
		for x := uint64(0); x < side; x++ {
			u := y*side + x
			if x+1 < side {
				edges = append(edges, graph.Edge{Src: u, Dst: u + 1}, graph.Edge{Src: u + 1, Dst: u})
			}
			if y+1 < side {
				edges = append(edges, graph.Edge{Src: u, Dst: u + side}, graph.Edge{Src: u + side, Dst: u})
			}
		}
	}
	return edges
}

// chain generates a simple directed path 0→1→…→n-1, the worst case for
// round counts in level-synchronous engines.
func chain(c Config) []graph.Edge {
	n := c.NumNodes()
	edges := make([]graph.Edge, 0, n-1)
	for u := uint64(0); u+1 < n; u++ {
		edges = append(edges, graph.Edge{Src: u, Dst: u + 1})
	}
	return edges
}

// star generates node 0 pointing at every other node: the extreme
// max-out-degree case (compare Table 1's rmat26 hub of 238M out-edges).
func star(c Config) []graph.Edge {
	n := c.NumNodes()
	edges := make([]graph.Edge, 0, n-1)
	for u := uint64(1); u < n; u++ {
		edges = append(edges, graph.Edge{Src: 0, Dst: u})
	}
	return edges
}

// addWeights assigns deterministic weights in [1, maxW].
func addWeights(edges []graph.Edge, seed uint64, maxW uint32) {
	workers := parallelism()
	var wg sync.WaitGroup
	chunk := (len(edges) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(edges) {
			break
		}
		hi := lo + chunk
		if hi > len(edges) {
			hi = len(edges)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			r := newRNG(seed ^ uint64(w)*0x9E3779B97F4A7C15)
			for i := lo; i < hi; i++ {
				edges[i].Weight = uint32(r.Uint64n(uint64(maxW))) + 1
			}
		}(w, lo, hi)
	}
	wg.Wait()
}

func parallelism() int {
	p := runtime.GOMAXPROCS(0)
	if p < 1 {
		p = 1
	}
	return p
}
