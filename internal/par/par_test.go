package par

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForVisitsEach(t *testing.T) {
	const n = 1000
	var seen [n]uint32
	For(n, 4, func(i int) { atomic.AddUint32(&seen[i], 1) })
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestForZeroAndNegative(t *testing.T) {
	called := false
	For(0, 4, func(int) { called = true })
	For(-5, 4, func(int) { called = true })
	if called {
		t.Fatal("body called for empty range")
	}
}

func TestRangeCoversDisjoint(t *testing.T) {
	const n = 777
	var mask [n]uint32
	Range(n, 5, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddUint32(&mask[i], 1)
		}
	})
	for i, c := range mask {
		if c != 1 {
			t.Fatalf("index %d covered %d times", i, c)
		}
	}
}

func TestRangeSingleWorker(t *testing.T) {
	calls := 0
	Range(10, 1, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 10 {
			t.Fatalf("chunk [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("calls %d", calls)
	}
}

func TestRangeWorkersCoversDisjointWithSlots(t *testing.T) {
	const n = 777
	const workers = 5
	var mask [n]uint32
	var slotHits [workers]uint32
	err := RangeWorkers(n, workers, func(w, lo, hi int) error {
		atomic.AddUint32(&slotHits[w], 1)
		for i := lo; i < hi; i++ {
			atomic.AddUint32(&mask[i], 1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range mask {
		if c != 1 {
			t.Fatalf("index %d covered %d times", i, c)
		}
	}
	for w, c := range slotHits {
		if c > 1 {
			t.Fatalf("worker slot %d used %d times", w, c)
		}
	}
}

func TestRangeWorkersError(t *testing.T) {
	wantErr := errSentinel("boom")
	var ran uint32
	err := RangeWorkers(100, 4, func(w, lo, hi int) error {
		atomic.AddUint32(&ran, uint32(hi-lo))
		if lo == 0 {
			return wantErr
		}
		return nil
	})
	if err != wantErr {
		t.Fatalf("err = %v", err)
	}
	if ran != 100 {
		t.Fatalf("only %d iterations ran; all bodies must complete", ran)
	}
	if err := RangeWorkers(0, 4, func(int, int, int) error { return wantErr }); err != nil {
		t.Fatal("body called for empty range")
	}
}

type errSentinel string

func (e errSentinel) Error() string { return string(e) }

func TestSumUint64(t *testing.T) {
	got := SumUint64(100, 7, func(lo, hi int) uint64 {
		var s uint64
		for i := lo; i < hi; i++ {
			s += uint64(i)
		}
		return s
	})
	if got != 99*100/2 {
		t.Fatalf("sum %d", got)
	}
	if SumUint64(0, 4, func(int, int) uint64 { return 99 }) != 0 {
		t.Fatal("empty sum nonzero")
	}
}

// TestQuickSumMatchesSequential for arbitrary sizes and worker counts.
func TestQuickSumMatchesSequential(t *testing.T) {
	f := func(nRaw uint16, wRaw uint8) bool {
		n := int(nRaw) % 2000
		w := int(wRaw)%16 + 1
		got := SumUint64(n, w, func(lo, hi int) uint64 {
			var s uint64
			for i := lo; i < hi; i++ {
				s += uint64(i) * 3
			}
			return s
		})
		var want uint64
		for i := 0; i < n; i++ {
			want += uint64(i) * 3
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultWorkersPositive(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Fatal("DefaultWorkers < 1")
	}
}
