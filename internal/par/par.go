// Package par contains the small data-parallel loop helpers shared by the
// computation engines. Engines differ in scheduling policy (frontiers,
// worklists, bulk kernels) but all ultimately fan work out over a fixed
// worker pool; this package is that pool.
package par

import (
	"runtime"
	"sync"
)

// DefaultWorkers returns the worker count used when a caller passes 0.
func DefaultWorkers() int {
	w := runtime.GOMAXPROCS(0)
	if w < 1 {
		w = 1
	}
	return w
}

// For runs body(i) for every i in [0, n) across workers goroutines,
// dividing the range into contiguous chunks. workers <= 0 means
// DefaultWorkers. It blocks until all iterations complete.
func For(n int, workers int, body func(i int)) {
	Range(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// Range runs body(lo, hi) over a contiguous chunking of [0, n). Each worker
// receives exactly one chunk; workers <= 0 means DefaultWorkers. Chunked
// form lets bodies keep per-chunk state (local counters, scratch buffers)
// without false sharing.
func Range(n int, workers int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		body(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// RangeWorkers runs body(w, lo, hi) over a contiguous chunking of [0, n),
// with w identifying the worker slot in [0, workers). Unlike Range, the
// worker index lets bodies own per-worker scratch (preallocated buffers,
// local stat counters) across the whole chunk. workers <= 0 means
// DefaultWorkers. The first non-nil error from any body is returned; all
// bodies run to completion regardless.
func RangeWorkers(n int, workers int, body func(w, lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		return body(0, 0, n)
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			errs[w] = body(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// SumUint64 runs body over chunks of [0, n), each returning a partial
// uint64 sum, and returns the total. Used for counting active work without
// atomic contention.
func SumUint64(n int, workers int, body func(lo, hi int) uint64) uint64 {
	if n <= 0 {
		return 0
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		return body(0, n)
	}
	partial := make([]uint64, workers)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	launched := 0
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		launched++
		go func(w, lo, hi int) {
			defer wg.Done()
			partial[w] = body(lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	var total uint64
	for _, p := range partial[:launched] {
		total += p
	}
	return total
}
