package gluon_test

import (
	"math"
	"testing"

	"gluon"
	"gluon/internal/ref"
)

func genTest(t *testing.T, weighted bool) (uint64, []gluon.Edge, *gluon.CSR) {
	t.Helper()
	numNodes, edges, err := gluon.Generate(gluon.GraphConfig{
		Kind: "rmat", Scale: 9, EdgeFactor: 8, Seed: 77, Weighted: weighted,
	})
	if err != nil {
		t.Fatal(err)
	}
	csr, err := gluon.BuildCSR(numNodes, edges, weighted)
	if err != nil {
		t.Fatal(err)
	}
	return numNodes, edges, csr
}

// TestPublicAPIBFS exercises the documented quick-start flow end to end
// for every system.
func TestPublicAPIBFS(t *testing.T) {
	numNodes, edges, csr := genTest(t, false)
	source := uint64(csr.MaxOutDegreeNode())
	want := ref.BFS(csr, uint32(source))
	for _, sys := range gluon.AllSystems() {
		res, err := gluon.Run(numNodes, edges, gluon.RunConfig{
			Hosts: 4, Policy: gluon.CVC, Opt: gluon.Opt(), CollectValues: true,
		}, gluon.NewBFS(sys, source, 2))
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		for i, w := range want {
			if float64(w) != res.Values[i] {
				t.Fatalf("%s: node %d = %v, want %d", sys, i, res.Values[i], w)
			}
		}
		if res.TotalCommBytes == 0 {
			t.Fatalf("%s: no communication recorded", sys)
		}
	}
}

func TestPublicAPISSSPAndCC(t *testing.T) {
	numNodes, edges, csr := genTest(t, true)
	source := uint64(csr.MaxOutDegreeNode())
	wantD := ref.SSSP(csr, uint32(source))
	res, err := gluon.Run(numNodes, edges, gluon.RunConfig{
		Hosts: 3, Policy: gluon.HVC, Opt: gluon.Opt(), CollectValues: true,
	}, gluon.NewSSSP(gluon.DGalois, source, 2))
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range wantD {
		if float64(w) != res.Values[i] {
			t.Fatalf("sssp node %d = %v, want %d", i, res.Values[i], w)
		}
	}

	sym := gluon.Symmetrize(edges)
	symCSR, err := gluon.BuildCSR(numNodes, sym, true)
	if err != nil {
		t.Fatal(err)
	}
	wantC := ref.CC(symCSR)
	res, err = gluon.Run(numNodes, sym, gluon.RunConfig{
		Hosts: 4, Policy: gluon.OEC, Opt: gluon.Opt(), CollectValues: true,
	}, gluon.NewCC(gluon.DLigra, 2))
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range wantC {
		if float64(w) != res.Values[i] {
			t.Fatalf("cc node %d = %v, want %d", i, res.Values[i], w)
		}
	}
}

func TestPublicAPIPageRank(t *testing.T) {
	numNodes, edges, csr := genTest(t, false)
	want := ref.PageRank(csr, 0.85, 1e-9, 100)
	res, err := gluon.Run(numNodes, edges, gluon.RunConfig{
		Hosts: 2, Policy: gluon.IEC, Opt: gluon.Opt(), CollectValues: true, MaxRounds: 100,
	}, gluon.NewPageRank(gluon.DIrGL, 1e-9, 2))
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range want {
		if math.Abs(res.Values[i]-w) > 1e-6 {
			t.Fatalf("pr node %d = %v, want %v", i, res.Values[i], w)
		}
	}
}

func TestPublicAPIKCoreAndBC(t *testing.T) {
	numNodes, edges, csr := genTest(t, false)
	sym := gluon.Symmetrize(edges)
	res, err := gluon.Run(numNodes, sym, gluon.RunConfig{
		Hosts: 3, Policy: gluon.CVC, Opt: gluon.Opt(), CollectValues: true,
	}, gluon.NewKCore(gluon.DGalois, 4, 2))
	if err != nil {
		t.Fatal(err)
	}
	inCore := 0
	for _, v := range res.Values {
		if v == 1 {
			inCore++
		}
	}
	if inCore == 0 || inCore == int(numNodes) {
		t.Fatalf("4-core of %d nodes has %d members; expected a proper subset", numNodes, inCore)
	}
	source := uint64(csr.MaxOutDegreeNode())
	bcRes, err := gluon.Run(numNodes, edges, gluon.RunConfig{
		Hosts: 3, Policy: gluon.OEC, Opt: gluon.Opt(),
		CollectValues: true, MaxRounds: 100000,
	}, gluon.NewBC(source, 2))
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, v := range bcRes.Values {
		total += v
	}
	if total <= 0 {
		t.Fatalf("bc dependencies sum %f; expected positive", total)
	}
}

func TestPublicAPIPageRankPush(t *testing.T) {
	numNodes, edges, csr := genTest(t, false)
	want := ref.PageRank(csr, 0.85, 1e-12, 500)
	res, err := gluon.Run(numNodes, edges, gluon.RunConfig{
		Hosts: 4, Policy: gluon.CVC, Opt: gluon.Opt(),
		CollectValues: true, MaxRounds: 500,
	}, gluon.NewPageRankPush(1e-10, 2))
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range want {
		if math.Abs(res.Values[i]-w) > 1e-5 {
			t.Fatalf("node %d: %g, want %g", i, res.Values[i], w)
		}
	}
}

func TestPublicAPIAutotune(t *testing.T) {
	numNodes, edges, _ := genTest(t, false)
	pol, err := gluon.AutotunePolicy(numNodes, edges, 3, gluon.NewPageRank(gluon.DGalois, 1e-6, 2))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, k := range []gluon.PolicyKind{gluon.OEC, gluon.IEC, gluon.CVC, gluon.HVC} {
		if pol == k {
			found = true
		}
	}
	if !found {
		t.Fatalf("autotune returned unknown policy %q", pol)
	}
}

func TestUnknownSystemErrors(t *testing.T) {
	numNodes, edges, _ := genTest(t, false)
	_, err := gluon.Run(numNodes, edges, gluon.RunConfig{
		Hosts: 2, Policy: gluon.OEC,
	}, gluon.NewBFS("no-such-system", 0, 1))
	if err == nil {
		t.Fatal("unknown system accepted")
	}
}

func TestPublicAPISSSPDelta(t *testing.T) {
	numNodes, edges, csr := genTest(t, true)
	source := uint64(csr.MaxOutDegreeNode())
	want := ref.SSSP(csr, uint32(source))
	res, err := gluon.Run(numNodes, edges, gluon.RunConfig{
		Hosts: 3, Policy: gluon.CVC, Opt: gluon.Opt(), CollectValues: true,
	}, gluon.NewSSSPDelta(source, 0, 2))
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range want {
		if float64(w) != res.Values[i] {
			t.Fatalf("node %d: %v, want %d", i, res.Values[i], w)
		}
	}
	if res.Rounds == 0 || len(res.RoundCompute) != res.Rounds {
		t.Fatalf("round trace: %d entries for %d rounds", len(res.RoundCompute), res.Rounds)
	}
}

func TestAllSystemsListed(t *testing.T) {
	got := gluon.AllSystems()
	if len(got) != 3 {
		t.Fatalf("AllSystems = %v", got)
	}
	for _, sys := range got {
		if sys != gluon.DLigra && sys != gluon.DGalois && sys != gluon.DIrGL {
			t.Fatalf("unknown system %q", sys)
		}
	}
}

func TestKCoreUnknownSystemErrors(t *testing.T) {
	numNodes, edges, _ := genTest(t, false)
	_, err := gluon.Run(numNodes, gluon.Symmetrize(edges), gluon.RunConfig{
		Hosts: 2, Policy: gluon.OEC,
	}, gluon.NewKCore("not-a-system", 4, 1))
	if err == nil {
		t.Fatal("unknown system accepted")
	}
}

func TestOptToggles(t *testing.T) {
	o := gluon.Opt()
	if !o.StructuralInvariants || !o.TemporalInvariance {
		t.Fatal("Opt() not fully enabled")
	}
	u := gluon.Unopt()
	if u.StructuralInvariants || u.TemporalInvariance {
		t.Fatal("Unopt() not fully disabled")
	}
}
